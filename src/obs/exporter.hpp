// Periodic metric snapshot exporter: this process's end of the plane.
//
// One background thread wakes every interval, asks the host (via fill_meta)
// for progress numbers, scrapes the global registry, and atomically
// replaces `<dir>/metrics-<pid>.jsonl` (snapshot.hpp).  stop() takes a
// final scrape so the file ends at the true totals even when the campaign
// finishes between ticks.  The thread only ever *reads* metrics and writes
// a side file — it cannot perturb journal bytes, reports, or the
// computation's determinism.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "obs/snapshot.hpp"

namespace tdfm::obs {

/// Exporter configuration.  `fill_meta` runs on the exporter thread right
/// before each scrape; it receives a meta pre-populated with pid/shard/label
/// and fills in the progress fields (grid_cells, cells_done, ...).  It must
/// be thread-safe against the campaign workers.
struct ExporterOptions {
  std::string dir;                 ///< plane directory (created if missing)
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::string label;               ///< e.g. "shard 0/3"
  std::int64_t interval_ms = 500;  ///< scrape period
  std::function<void(SnapshotMeta&)> fill_meta;
};

/// RAII handle: start() spawns the thread, stop()/dtor joins it after a
/// final export.  Enables metrics globally on start (snapshots of a
/// disabled registry would be all zeros).
class SnapshotExporter {
 public:
  SnapshotExporter();  // out-of-line: Ticker is incomplete here
  ~SnapshotExporter();
  SnapshotExporter(const SnapshotExporter&) = delete;
  SnapshotExporter& operator=(const SnapshotExporter&) = delete;

  /// Creates the directory and starts exporting.  Throws ConfigError if the
  /// directory cannot be created; idempotent stop()s are fine.
  void start(ExporterOptions options);

  /// Final export + join.  No-op when not running.
  void stop();

  [[nodiscard]] bool running() const { return running_; }

  /// The file this process exports to ("" before start()).
  [[nodiscard]] const std::string& path() const { return path_; }

  /// One synchronous export (also what the ticker calls).  Requires start()
  /// to have configured the directory; safe to call concurrently with the
  /// ticker (writers race benignly — both produce complete snapshots).
  void export_now();

 private:
  struct Ticker;
  ExporterOptions options_;
  std::string path_;
  std::uint64_t seq_ = 0;
  bool running_ = false;
  std::unique_ptr<Ticker> ticker_;
  std::mutex export_mu_;  ///< serialises exports (shared .tmp staging file)
};

}  // namespace tdfm::obs
