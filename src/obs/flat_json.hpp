// Shared flat-JSON parsing for the repo's line-oriented schemas.
//
// Three consumers, one grammar: the study journal (one CellRecord per line),
// the obs metric snapshots (one header/metric per line), and the Chrome
// trace merger (one trace event per line).  All of them emit *flat* JSON
// objects — string / number / bool / null values, plus number arrays
// (histogram buckets) and one level of nested objects (trace metadata
// `args`) — so a single strict parser serves every reader and a foreign or
// truncated file fails loudly everywhere with the same diagnostics.
//
// The string and number grammars are deliberately exact RFC 8259: \uXXXX
// escapes decode to real UTF-8 (surrogate pairs included, lone surrogates
// rejected), and numbers reject what JSON rejects ("+1", "01", "1.", ".5",
// interior signs).  `json_valid` is the schema-free companion: a pure
// syntax check over arbitrarily nested JSON, used to validate emitted
// documents (merged traces, crash dumps) without a JSON library.
#pragma once

#include <cctype>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/error.hpp"

namespace tdfm::obs {

/// One parsed value of a flat JSON object field.
struct FlatValue {
  enum class Kind { kString, kNumber, kBool, kNull, kNumberArray };
  Kind kind = Kind::kNull;
  std::string str;             ///< kString
  double num = 0.0;            ///< kNumber (also kBool: 1.0 / 0.0)
  std::vector<double> array;   ///< kNumberArray

  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::kBool; }
  [[nodiscard]] bool is_number() const {
    // Null reads as 0.0 for numeric fields (legacy journal tolerance for
    // non-finite doubles serialised as null).
    return kind == Kind::kNumber || kind == Kind::kNull;
  }
};

/// Strict parser for one flat JSON object.  Nested objects are flattened
/// into dotted keys ("args.name"); arrays must hold numbers only.  Throws
/// ConfigError ("<context> at byte N: why") on anything structurally off.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(std::string_view s,
                          std::string context = "flat JSON parse error")
      : s_(s), context_(std::move(context)) {}

  /// Invokes on_field(key, FlatValue) for every (possibly dotted) key.
  template <typename Fn>
  void parse(Fn&& on_field) {
    skip_ws();
    parse_object(std::string(), on_field);
    skip_ws();
    if (!eof()) fail("trailing characters after record");
  }

 private:
  [[nodiscard]] bool eof() const { return pos_ >= s_.size(); }
  [[nodiscard]] char peek() const { return s_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\r' ||
                      peek() == '\n')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  bool consume_literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  template <typename Fn>
  void parse_object(const std::string& prefix, Fn&& on_field) {
    expect('{');
    skip_ws();
    if (consume('}')) return;
    while (true) {
      skip_ws();
      std::string key = parse_string();
      if (!prefix.empty()) key = prefix + "." + key;
      skip_ws();
      expect(':');
      skip_ws();
      if (!eof() && peek() == '{') {
        parse_object(key, on_field);
      } else {
        FlatValue v;
        if (!eof() && peek() == '"') {
          v.kind = FlatValue::Kind::kString;
          v.str = parse_string();
        } else if (!eof() && (peek() == 't' || peek() == 'f')) {
          const bool b = consume_literal("true");
          if (!b && !consume_literal("false")) fail("expected boolean");
          v.kind = FlatValue::Kind::kBool;
          v.num = b ? 1.0 : 0.0;
        } else if (consume_literal("null")) {
          v.kind = FlatValue::Kind::kNull;
        } else if (!eof() && peek() == '[') {
          v.kind = FlatValue::Kind::kNumberArray;
          v.array = parse_number_array();
        } else {
          v.kind = FlatValue::Kind::kNumber;
          v.num = parse_number();
        }
        on_field(key, v);
      }
      skip_ws();
      if (consume('}')) break;
      expect(',');
    }
  }

  std::vector<double> parse_number_array() {
    expect('[');
    std::vector<double> out;
    skip_ws();
    if (consume(']')) return out;
    while (true) {
      skip_ws();
      out.push_back(parse_number());
      skip_ws();
      if (consume(']')) return out;
      expect(',');
    }
  }

  /// One \uXXXX escape's code unit (the four hex digits after "\u").
  unsigned parse_hex4() {
    if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = s_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else fail("bad \\u escape");
    }
    return code;
  }

  /// Appends `code` (a Unicode scalar value) as UTF-8.
  void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) fail("unterminated escape");
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: JSON encodes astral code points as a
            // \uD800-\uDBFF + \uDC00-\uDFFF pair (RFC 8259 §7).
            if (!consume_literal("\\u")) fail("unpaired high surrogate");
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired low surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  double parse_number() {
    // Exactly the RFC 8259 grammar:
    //   -? (0 | [1-9][0-9]*) ('.' [0-9]+)? ([eE] [+-]? [0-9]+)?
    // A leading '+', a lone '-', "01", "1." or interior signs ("1-2") are
    // rejected here rather than left to stod's laxer locale-aware parse, so
    // foreign files fail loudly, as this parser's contract promises.
    const std::size_t start = pos_;
    const auto digit = [&] { return !eof() && peek() >= '0' && peek() <= '9'; };
    consume('-');
    if (consume('0')) {
      // "0" takes no more integer digits ("01" is not a JSON number).
    } else {
      if (!digit()) fail("expected number");
      while (digit()) ++pos_;
    }
    if (consume('.')) {
      if (!digit()) fail("expected digit after decimal point");
      while (digit()) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digit()) fail("expected exponent digits");
      while (digit()) ++pos_;
    }
    const std::string text(s_.substr(start, pos_ - start));
    try {
      std::size_t used = 0;
      const double v = std::stod(text, &used);
      if (used != text.size()) throw std::invalid_argument(text);
      return v;
    } catch (const std::exception&) {
      fail("malformed number '" + text + "'");
    }
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw ConfigError(context_ + " at byte " + std::to_string(pos_) + ": " +
                      why);
  }

  std::string_view s_;
  std::string context_;
  std::size_t pos_ = 0;
};

namespace detail {

/// Schema-free recursive-descent JSON syntax checker (RFC 8259 minus
/// surrogate-pair validation).  Validation only — no tree is built.
class JsonSyntaxChecker {
 public:
  explicit JsonSyntaxChecker(std::string_view text) : s_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  [[nodiscard]] bool eof() const { return pos_ >= s_.size(); }
  [[nodiscard]] char peek() const { return s_[pos_]; }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }
  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }
  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool string() {
    if (!consume('"')) return false;
    while (!eof()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (eof()) return false;
        const char esc = s_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (eof() ||
                std::isxdigit(static_cast<unsigned char>(s_[pos_])) == 0) {
              return false;
            }
            ++pos_;
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
    }
    return false;
  }

  bool digits() {
    if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
      return false;
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) {
      ++pos_;
    }
    return true;
  }

  bool number() {
    consume('-');
    if (!digits()) return false;
    if (consume('.') && !digits()) return false;
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool value() {
    if (eof()) return false;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// True when `text` is one syntactically valid JSON value (any nesting).
[[nodiscard]] inline bool json_valid(std::string_view text) {
  return detail::JsonSyntaxChecker(text).valid();
}

}  // namespace tdfm::obs
