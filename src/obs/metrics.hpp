// Metrics registry: counters, gauges, and fixed-bucket histograms.
//
// Hot-path increments must not perturb the training loops they observe, so
// counter/histogram writes go to *thread-local shards* — each thread owns a
// fixed-size block of relaxed atomics that no other thread writes.  A shard
// write is an uncontended cache-line update; there is no lock, no
// false-sharing with other threads' shards, and no effect on the order or
// arithmetic of the observed computation (the repo's bit-for-bit determinism
// guarantee therefore holds with metrics enabled).  Scrapes take the
// registry mutex, sum every shard in registration order, and return
// name-sorted samples.
//
// Everything is gated on a single runtime flag (set_metrics_enabled); the
// disabled path is one relaxed load and a branch, measured in
// bench_overhead.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tdfm::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;

/// Per-thread metric storage.  Fixed capacity so slots never move: handles
/// cache raw indices and increments stay lock-free while scrapers read
/// concurrently (relaxed atomics on both sides — counts are monotone and a
/// scrape is a snapshot, not a barrier).
struct Shard {
  static constexpr std::size_t kU64Slots = 1024;  ///< counters + histogram buckets
  static constexpr std::size_t kF64Slots = 256;   ///< histogram sums
  std::atomic<std::uint64_t> u64[kU64Slots];
  std::atomic<double> f64[kF64Slots];
  Shard();
};

/// This thread's shard; registered with Registry::global() on first use.
[[nodiscard]] Shard& local_shard();
}  // namespace detail

/// Master switch for all metric recording.  Off by default.
void set_metrics_enabled(bool on);
[[nodiscard]] inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

class Registry;

/// Monotone counter handle (copyable, trivially cheap).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!metrics_enabled()) return;
    detail::local_shard().u64[slot_].fetch_add(n, std::memory_order_relaxed);
  }

  /// Current value merged across all shards (takes the registry lock).
  [[nodiscard]] std::uint64_t value() const;

 private:
  friend class Registry;
  Counter(Registry* reg, std::size_t slot) : reg_(reg), slot_(slot) {}
  Registry* reg_;
  std::size_t slot_;
};

/// Last-write-wins gauge (centrally stored; sets are assumed rare).
class Gauge {
 public:
  void set(double v);
  [[nodiscard]] double value() const;

 private:
  friend class Registry;
  Gauge(Registry* reg, std::size_t index) : reg_(reg), index_(index) {}
  Registry* reg_;
  std::size_t index_;
};

/// Fixed-bucket histogram: bucket i counts observations <= upper_bounds[i];
/// one implicit +inf bucket catches the rest.
class Histogram {
 public:
  void observe(double v);

  struct Snapshot {
    std::vector<double> upper_bounds;        ///< finite bounds, ascending
    std::vector<std::uint64_t> counts;       ///< upper_bounds.size() + 1 entries
    std::uint64_t total = 0;                 ///< sum of counts
    double sum = 0.0;                        ///< sum of observed values
  };
  [[nodiscard]] Snapshot snapshot() const;

 private:
  friend class Registry;
  Histogram(Registry* reg, const std::vector<double>* bounds,
            std::size_t base_slot, std::size_t sum_slot)
      : reg_(reg), bounds_(bounds), base_slot_(base_slot), sum_slot_(sum_slot) {}
  Registry* reg_;
  const std::vector<double>* bounds_;
  std::size_t base_slot_;  ///< first bucket slot; bounds->size()+1 slots follow
  std::size_t sum_slot_;
};

/// Explicit-bucket-bounds helpers for Registry::histogram.  The histograms
/// the training loop registers are tuned for epoch-scale seconds; request
/// serving needs µs-scale buckets, and hand-writing 20 ascending bounds is
/// error-prone.  Both return `count` ascending finite bounds (the registry
/// adds the +inf bucket itself).
[[nodiscard]] std::vector<double> linear_buckets(double start, double step,
                                                 std::size_t count);
[[nodiscard]] std::vector<double> exponential_buckets(double start, double factor,
                                                      std::size_t count);

/// One scraped metric, ready for export.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  std::uint64_t count = 0;  ///< counter value / histogram total
  double value = 0.0;       ///< gauge value / histogram sum
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> bucket_counts;
};

class Registry {
 public:
  /// Process-wide registry used by all built-in instrumentation.
  [[nodiscard]] static Registry& global();

  /// Registration is idempotent by name: the same name yields a handle onto
  /// the same storage.  Names must not be reused across metric kinds.
  [[nodiscard]] Counter counter(const std::string& name);
  [[nodiscard]] Gauge gauge(const std::string& name);
  [[nodiscard]] Histogram histogram(const std::string& name,
                                    std::vector<double> upper_bounds);

  /// Merges all shards and returns every metric, sorted by name.
  [[nodiscard]] std::vector<MetricSample> scrape();

  /// Zeroes every value (metrics stay registered).  Test/bench support; call
  /// only while no other thread is incrementing.
  void reset_values();

  /// Internal: adopts a thread's shard so scrapes can see it (and so counts
  /// survive thread exit).
  void register_shard(std::shared_ptr<detail::Shard> shard);

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  struct CounterInfo {
    std::string name;
    std::size_t slot;
  };
  struct GaugeInfo {
    std::string name;
    std::atomic<double> value{0.0};
  };
  struct HistInfo {
    std::string name;
    std::vector<double> bounds;
    std::size_t base_slot;
    std::size_t sum_slot;
  };

  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  [[nodiscard]] std::uint64_t sum_u64_locked(std::size_t slot) const;

  mutable std::mutex mu_;
  std::vector<CounterInfo> counters_;
  std::vector<std::unique_ptr<GaugeInfo>> gauges_;
  std::vector<std::unique_ptr<HistInfo>> hists_;
  std::vector<std::shared_ptr<detail::Shard>> shards_;
  std::size_t next_u64_ = 0;
  std::size_t next_f64_ = 0;
};

}  // namespace tdfm::obs
