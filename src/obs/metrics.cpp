#include "obs/metrics.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace tdfm::obs {

namespace detail {

std::atomic<bool> g_metrics_enabled{false};

Shard::Shard() {
  for (auto& v : u64) v.store(0, std::memory_order_relaxed);
  for (auto& v : f64) v.store(0.0, std::memory_order_relaxed);
}

namespace {
thread_local std::shared_ptr<Shard> t_shard;
}  // namespace

Shard& local_shard() {
  if (!t_shard) {
    t_shard = std::make_shared<Shard>();
    Registry::global().register_shard(t_shard);
  }
  return *t_shard;
}

}  // namespace detail

std::vector<double> linear_buckets(double start, double step, std::size_t count) {
  TDFM_CHECK(count >= 1, "need at least one bucket bound");
  TDFM_CHECK(step > 0.0, "linear bucket step must be positive");
  std::vector<double> bounds(count);
  for (std::size_t i = 0; i < count; ++i) {
    bounds[i] = start + static_cast<double>(i) * step;
  }
  return bounds;
}

std::vector<double> exponential_buckets(double start, double factor, std::size_t count) {
  TDFM_CHECK(count >= 1, "need at least one bucket bound");
  TDFM_CHECK(start > 0.0, "exponential buckets start above zero");
  TDFM_CHECK(factor > 1.0, "exponential bucket factor must exceed 1");
  std::vector<double> bounds(count);
  double v = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds[i] = v;
    v *= factor;
  }
  return bounds;
}

void set_metrics_enabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

void Registry::register_shard(std::shared_ptr<detail::Shard> shard) {
  const std::lock_guard<std::mutex> lk(mu_);
  shards_.push_back(std::move(shard));
}

Counter Registry::counter(const std::string& name) {
  TDFM_CHECK(!name.empty(), "metric name must not be empty");
  const std::lock_guard<std::mutex> lk(mu_);
  for (const auto& c : counters_) {
    if (c.name == name) return Counter(this, c.slot);
  }
  for (const auto& g : gauges_) {
    TDFM_CHECK(g->name != name, "metric name already used by a gauge");
  }
  for (const auto& h : hists_) {
    TDFM_CHECK(h->name != name, "metric name already used by a histogram");
  }
  TDFM_CHECK(next_u64_ < detail::Shard::kU64Slots, "metric registry u64 slots exhausted");
  counters_.push_back({name, next_u64_});
  return Counter(this, next_u64_++);
}

Gauge Registry::gauge(const std::string& name) {
  TDFM_CHECK(!name.empty(), "metric name must not be empty");
  const std::lock_guard<std::mutex> lk(mu_);
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    if (gauges_[i]->name == name) return Gauge(this, i);
  }
  for (const auto& c : counters_) {
    TDFM_CHECK(c.name != name, "metric name already used by a counter");
  }
  for (const auto& h : hists_) {
    TDFM_CHECK(h->name != name, "metric name already used by a histogram");
  }
  auto info = std::make_unique<GaugeInfo>();
  info->name = name;
  gauges_.push_back(std::move(info));
  return Gauge(this, gauges_.size() - 1);
}

Histogram Registry::histogram(const std::string& name, std::vector<double> upper_bounds) {
  TDFM_CHECK(!name.empty(), "metric name must not be empty");
  TDFM_CHECK(!upper_bounds.empty(), "histogram needs at least one bucket bound");
  TDFM_CHECK(std::is_sorted(upper_bounds.begin(), upper_bounds.end()),
             "histogram bounds must be ascending");
  const std::lock_guard<std::mutex> lk(mu_);
  for (const auto& h : hists_) {
    if (h->name == name) {
      TDFM_CHECK(h->bounds == upper_bounds,
                 "histogram re-registered with different bounds");
      return Histogram(this, &h->bounds, h->base_slot, h->sum_slot);
    }
  }
  for (const auto& c : counters_) {
    TDFM_CHECK(c.name != name, "metric name already used by a counter");
  }
  for (const auto& g : gauges_) {
    TDFM_CHECK(g->name != name, "metric name already used by a gauge");
  }
  const std::size_t buckets = upper_bounds.size() + 1;  // +inf bucket
  TDFM_CHECK(next_u64_ + buckets <= detail::Shard::kU64Slots,
             "metric registry u64 slots exhausted");
  TDFM_CHECK(next_f64_ < detail::Shard::kF64Slots,
             "metric registry f64 slots exhausted");
  auto info = std::make_unique<HistInfo>();
  info->name = name;
  info->bounds = std::move(upper_bounds);
  info->base_slot = next_u64_;
  info->sum_slot = next_f64_;
  next_u64_ += buckets;
  next_f64_ += 1;
  hists_.push_back(std::move(info));
  const auto& stored = hists_.back();
  return Histogram(this, &stored->bounds, stored->base_slot, stored->sum_slot);
}

std::uint64_t Registry::sum_u64_locked(std::size_t slot) const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->u64[slot].load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<MetricSample> Registry::scrape() {
  const std::lock_guard<std::mutex> lk(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + hists_.size());
  for (const auto& c : counters_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kCounter;
    s.name = c.name;
    s.count = sum_u64_locked(c.slot);
    out.push_back(std::move(s));
  }
  for (const auto& g : gauges_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kGauge;
    s.name = g->name;
    s.value = g->value.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  for (const auto& h : hists_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kHistogram;
    s.name = h->name;
    s.upper_bounds = h->bounds;
    s.bucket_counts.resize(h->bounds.size() + 1);
    for (std::size_t b = 0; b < s.bucket_counts.size(); ++b) {
      s.bucket_counts[b] = sum_u64_locked(h->base_slot + b);
      s.count += s.bucket_counts[b];
    }
    double sum = 0.0;
    for (const auto& shard : shards_) {
      sum += shard->f64[h->sum_slot].load(std::memory_order_relaxed);
    }
    s.value = sum;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) { return a.name < b.name; });
  return out;
}

void Registry::reset_values() {
  const std::lock_guard<std::mutex> lk(mu_);
  for (const auto& shard : shards_) {
    for (auto& v : shard->u64) v.store(0, std::memory_order_relaxed);
    for (auto& v : shard->f64) v.store(0.0, std::memory_order_relaxed);
  }
  for (const auto& g : gauges_) g->value.store(0.0, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  const std::lock_guard<std::mutex> lk(reg_->mu_);
  return reg_->sum_u64_locked(slot_);
}

void Gauge::set(double v) {
  if (!metrics_enabled()) return;
  const std::lock_guard<std::mutex> lk(reg_->mu_);
  reg_->gauges_[index_]->value.store(v, std::memory_order_relaxed);
}

double Gauge::value() const {
  const std::lock_guard<std::mutex> lk(reg_->mu_);
  return reg_->gauges_[index_]->value.load(std::memory_order_relaxed);
}

void Histogram::observe(double v) {
  if (!metrics_enabled()) return;
  auto& shard = detail::local_shard();
  const auto& bounds = *bounds_;
  // lower_bound keeps the documented "v <= upper_bounds[i]" semantics: a
  // boundary value lands in its own bucket, not the next one.
  const std::size_t bucket =
      static_cast<std::size_t>(std::lower_bound(bounds.begin(), bounds.end(), v) -
                               bounds.begin());
  shard.u64[base_slot_ + bucket].fetch_add(1, std::memory_order_relaxed);
  // C++20 atomic<double>::fetch_add; each thread only adds to its own slot,
  // so the per-shard sum is an exact serial accumulation.
  shard.f64[sum_slot_].fetch_add(v, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  const std::lock_guard<std::mutex> lk(reg_->mu_);
  Snapshot s;
  s.upper_bounds = *bounds_;
  s.counts.resize(s.upper_bounds.size() + 1);
  for (std::size_t b = 0; b < s.counts.size(); ++b) {
    s.counts[b] = reg_->sum_u64_locked(base_slot_ + b);
    s.total += s.counts[b];
  }
  for (const auto& shard : reg_->shards_) {
    s.sum += shard->f64[sum_slot_].load(std::memory_order_relaxed);
  }
  return s;
}

}  // namespace tdfm::obs
