#include "obs/snapshot.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

#include "core/error.hpp"
#include "core/logging.hpp"
#include "obs/flat_json.hpp"
#include "obs/json.hpp"

namespace tdfm::obs {

namespace {

/// Round-trip-exact doubles: the aggregate of exported snapshots must equal
/// the aggregate of the in-memory registries, so no precision is shed at the
/// file boundary (json_number's %.9g is for human-facing telemetry).
std::string exact_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::int64_t now_wall_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

MetricsSnapshot collect_snapshot(SnapshotMeta meta) {
  MetricsSnapshot snap;
  if (meta.wall_us == 0) meta.wall_us = now_wall_us();
  snap.meta = std::move(meta);
  snap.samples = Registry::global().scrape();
  return snap;
}

std::string serialize_snapshot(const MetricsSnapshot& snap) {
  const SnapshotMeta& m = snap.meta;
  std::ostringstream os;
  os << "{\"type\":\"snapshot\",\"schema_version\":" << kSnapshotSchemaVersion
     << ",\"pid\":" << m.pid << ",\"shard_index\":" << m.shard_index
     << ",\"shard_count\":" << m.shard_count << ",\"seq\":" << m.seq
     << ",\"wall_us\":" << m.wall_us << ",\"label\":" << json_string(m.label)
     << ",\"grid_cells\":" << m.grid_cells << ",\"cells_done\":" << m.cells_done
     << ",\"cells_executed\":" << m.cells_executed
     << ",\"cells_stolen\":" << m.cells_stolen
     << ",\"elapsed_seconds\":" << exact_number(m.elapsed_seconds) << "}\n";
  // Metric lines use the same shapes obs/telemetry.cpp streams, so one
  // schema serves both the telemetry file and the plane.
  for (const MetricSample& s : snap.samples) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        os << "{\"type\":\"counter\",\"name\":" << json_string(s.name)
           << ",\"value\":" << s.count << "}\n";
        break;
      case MetricSample::Kind::kGauge:
        os << "{\"type\":\"gauge\",\"name\":" << json_string(s.name)
           << ",\"value\":" << exact_number(s.value) << "}\n";
        break;
      case MetricSample::Kind::kHistogram: {
        os << "{\"type\":\"histogram\",\"name\":" << json_string(s.name)
           << ",\"count\":" << s.count << ",\"sum\":" << exact_number(s.value)
           << ",\"upper_bounds\":[";
        for (std::size_t i = 0; i < s.upper_bounds.size(); ++i) {
          if (i) os << ',';
          os << exact_number(s.upper_bounds[i]);
        }
        os << "],\"bucket_counts\":[";
        for (std::size_t i = 0; i < s.bucket_counts.size(); ++i) {
          if (i) os << ',';
          os << s.bucket_counts[i];
        }
        os << "]}\n";
        break;
      }
    }
  }
  return os.str();
}

MetricsSnapshot parse_snapshot(std::string_view text) {
  MetricsSnapshot snap;
  bool saw_header = false;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    ++line_no;

    std::string type;
    std::string name;
    MetricSample sample;
    SnapshotMeta meta;
    double schema_version = -1.0;
    FlatJsonParser parser(line, "snapshot parse error");
    parser.parse([&](const std::string& key, const FlatValue& v) {
      if (key == "type" && v.is_string()) type = v.str;
      else if (key == "name" && v.is_string()) name = v.str;
      else if (key == "schema_version") schema_version = v.num;
      else if (key == "pid") meta.pid = static_cast<std::int64_t>(v.num);
      else if (key == "shard_index") meta.shard_index = static_cast<std::size_t>(v.num);
      else if (key == "shard_count") meta.shard_count = static_cast<std::size_t>(v.num);
      else if (key == "seq") meta.seq = static_cast<std::uint64_t>(v.num);
      else if (key == "wall_us") meta.wall_us = static_cast<std::int64_t>(v.num);
      else if (key == "label" && v.is_string()) meta.label = v.str;
      else if (key == "grid_cells") meta.grid_cells = static_cast<std::size_t>(v.num);
      else if (key == "cells_done") meta.cells_done = static_cast<std::size_t>(v.num);
      else if (key == "cells_executed") meta.cells_executed = static_cast<std::size_t>(v.num);
      else if (key == "cells_stolen") meta.cells_stolen = static_cast<std::size_t>(v.num);
      else if (key == "elapsed_seconds") meta.elapsed_seconds = v.num;
      else if (key == "value") {
        sample.count = static_cast<std::uint64_t>(v.num);  // counter
        sample.value = v.num;                              // gauge
      } else if (key == "count") {
        sample.count = static_cast<std::uint64_t>(v.num);
      } else if (key == "sum") {
        sample.value = v.num;
      } else if (key == "upper_bounds") {
        sample.upper_bounds = v.array;
      } else if (key == "bucket_counts") {
        sample.bucket_counts.assign(v.array.size(), 0);
        for (std::size_t i = 0; i < v.array.size(); ++i) {
          sample.bucket_counts[i] = static_cast<std::uint64_t>(v.array[i]);
        }
      }
      // Unknown keys: ignored (forward compatibility within a version).
    });

    if (!saw_header) {
      if (type != "snapshot") {
        throw ConfigError("snapshot parse error: first line is not a "
                          "snapshot header (type=\"" + type + "\")");
      }
      if (schema_version != static_cast<double>(kSnapshotSchemaVersion)) {
        throw ConfigError("snapshot parse error: unsupported schema_version " +
                          std::to_string(schema_version) + " (this build reads " +
                          std::to_string(kSnapshotSchemaVersion) + ")");
      }
      snap.meta = std::move(meta);
      saw_header = true;
      continue;
    }
    if (name.empty()) {
      throw ConfigError("snapshot parse error: metric line " +
                        std::to_string(line_no) + " has no name");
    }
    sample.name = std::move(name);
    if (type == "counter") {
      sample.kind = MetricSample::Kind::kCounter;
      sample.value = 0.0;
    } else if (type == "gauge") {
      sample.kind = MetricSample::Kind::kGauge;
      sample.count = 0;
    } else if (type == "histogram") {
      sample.kind = MetricSample::Kind::kHistogram;
      if (sample.bucket_counts.size() != sample.upper_bounds.size() + 1) {
        throw ConfigError("snapshot parse error: histogram " + sample.name +
                          " has " + std::to_string(sample.bucket_counts.size()) +
                          " buckets for " + std::to_string(sample.upper_bounds.size()) +
                          " bounds (want bounds+1)");
      }
    } else {
      throw ConfigError("snapshot parse error: unknown metric type \"" + type +
                        "\" on line " + std::to_string(line_no));
    }
    snap.samples.push_back(std::move(sample));
  }
  if (!saw_header) {
    throw ConfigError("snapshot parse error: empty file (no header line)");
  }
  return snap;
}

void write_snapshot_atomic(const std::string& path, const MetricsSnapshot& snap) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    TDFM_CHECK(out.good(), "cannot open snapshot tmp file: " + tmp);
    out << serialize_snapshot(snap);
    out.flush();
    TDFM_CHECK(out.good(), "failed writing snapshot tmp file: " + tmp);
  }
  // Atomic within a directory on POSIX: a concurrent reader (the --progress
  // driver) sees the whole new snapshot or the whole old one.
  TDFM_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
             "failed renaming snapshot into place: " + path);
}

std::string snapshot_path(const std::string& dir, std::int64_t pid) {
  return dir + "/metrics-" + std::to_string(pid) + ".jsonl";
}

std::vector<std::string> list_snapshot_files(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return paths;  // not exported yet
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (ec) break;
    const std::string name = entry.path().filename().string();
    if (name.rfind("metrics-", 0) != 0) continue;
    if (name.size() < 6 || name.substr(name.size() - 6) != ".jsonl") continue;
    paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

SnapshotScan read_snapshot_dir(const std::string& dir) {
  SnapshotScan scan;
  for (const std::string& path : list_snapshot_files(dir)) {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
      TDFM_LOG(kWarn) << "obs: skipping unreadable snapshot " << path;
      ++scan.skipped;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
      scan.snapshots.push_back(parse_snapshot(buf.str()));
    } catch (const ConfigError& e) {
      // A torn or foreign file costs one scrape interval, never the view.
      TDFM_LOG(kWarn) << "obs: skipping snapshot " << path << ": " << e.what();
      ++scan.skipped;
    }
  }
  return scan;
}

void Aggregator::add(const MetricsSnapshot& snap) {
  for (const MetricSample& s : snap.samples) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        counters_[s.name] += s.count;
        break;
      case MetricSample::Kind::kGauge:
        take_gauge(s.name, GaugeState{s.value, snap.meta.wall_us, snap.meta.pid});
        break;
      case MetricSample::Kind::kHistogram: {
        HistState h;
        h.upper_bounds = s.upper_bounds;
        h.bucket_counts = s.bucket_counts;
        h.sum = s.value;
        h.count = s.count;
        take_histogram(s.name, h);
        break;
      }
    }
  }
  sources_.push_back(snap.meta);
}

void Aggregator::merge(const Aggregator& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, g] : other.gauges_) take_gauge(name, g);
  for (const auto& [name, h] : other.hists_) take_histogram(name, h);
  sources_.insert(sources_.end(), other.sources_.begin(), other.sources_.end());
}

void Aggregator::take_gauge(const std::string& name, const GaugeState& incoming) {
  auto [it, inserted] = gauges_.emplace(name, incoming);
  if (inserted) return;
  // Newest snapshot wins; (wall_us, pid, value) is a total order, so the
  // result never depends on which snapshot was added first.
  GaugeState& cur = it->second;
  if (std::tie(incoming.wall_us, incoming.pid, incoming.value) >
      std::tie(cur.wall_us, cur.pid, cur.value)) {
    cur = incoming;
  }
}

void Aggregator::take_histogram(const std::string& name, const HistState& incoming) {
  auto [it, inserted] = hists_.emplace(name, incoming);
  if (inserted) return;
  HistState& cur = it->second;
  if (cur.upper_bounds != incoming.upper_bounds) {
    // Summing across different bucket layouts would silently mis-bin; this
    // is a schema conflict (mixed build versions exporting into one dir).
    throw ConfigError("obs aggregation conflict: histogram " + name +
                      " has mismatched bucket bounds across snapshots");
  }
  for (std::size_t i = 0; i < cur.bucket_counts.size(); ++i) {
    cur.bucket_counts[i] += incoming.bucket_counts[i];
  }
  cur.sum += incoming.sum;
  cur.count += incoming.count;
}

std::vector<MetricSample> Aggregator::samples() const {
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + hists_.size());
  for (const auto& [name, v] : counters_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kCounter;
    s.name = name;
    s.count = v;
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kGauge;
    s.name = name;
    s.value = g.value;
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : hists_) {
    MetricSample s;
    s.kind = MetricSample::Kind::kHistogram;
    s.name = name;
    s.count = h.count;
    s.value = h.sum;
    s.upper_bounds = h.upper_bounds;
    s.bucket_counts = h.bucket_counts;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

std::vector<SnapshotMeta> Aggregator::latest_per_shard() const {
  std::map<std::size_t, SnapshotMeta> best;
  for (const SnapshotMeta& m : sources_) {
    auto [it, inserted] = best.emplace(m.shard_index, m);
    if (inserted) continue;
    const SnapshotMeta& cur = it->second;
    if (std::tie(m.wall_us, m.seq, m.pid) >
        std::tie(cur.wall_us, cur.seq, cur.pid)) {
      it->second = m;
    }
  }
  std::vector<SnapshotMeta> out;
  out.reserve(best.size());
  for (auto& [idx, m] : best) out.push_back(std::move(m));
  return out;
}

double histogram_quantile(const std::vector<double>& upper_bounds,
                          const std::vector<std::uint64_t>& bucket_counts,
                          double q) {
  if (bucket_counts.empty()) return 0.0;
  TDFM_CHECK(bucket_counts.size() == upper_bounds.size() + 1,
             "histogram_quantile: want bounds+1 buckets");
  std::uint64_t total = 0;
  for (const std::uint64_t c : bucket_counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
    const double next = cum + static_cast<double>(bucket_counts[i]);
    if (next < target && i + 1 < bucket_counts.size()) {
      cum = next;
      continue;
    }
    if (i >= upper_bounds.size()) {
      // Mass in the +inf bucket: the best bounded statement is the last
      // finite bound (the estimate saturates, as Prometheus's does).
      return upper_bounds.empty() ? 0.0 : upper_bounds.back();
    }
    const double hi = upper_bounds[i];
    double lo = i == 0 ? std::min(0.0, hi) : upper_bounds[i - 1];
    const double in_bucket = static_cast<double>(bucket_counts[i]);
    if (in_bucket <= 0.0) return hi;
    return lo + (hi - lo) * ((target - cum) / in_bucket);
  }
  return upper_bounds.empty() ? 0.0 : upper_bounds.back();
}

double histogram_quantile(const MetricSample& sample, double q) {
  TDFM_CHECK(sample.kind == MetricSample::Kind::kHistogram,
             "histogram_quantile: sample is not a histogram");
  return histogram_quantile(sample.upper_bounds, sample.bucket_counts, q);
}

}  // namespace tdfm::obs
