// Crash flight recorder: the last thing each thread was doing, recoverable
// from a signal handler.
//
// A `kill -9` leaves the journal's torn-tail recovery to tell the story; a
// SIGSEGV/SIGABRT/SIGBUS can do better, because the dying process gets one
// last chance to speak.  Each thread appends recent events (span begin/end,
// journal appends, cell begin/end, steal claims, hot swaps) to a fixed-size
// lock-free ring; an async-signal-safe handler walks every ring and writes
// `<dir>/crash-<pid>.json` naming, per thread, the trailing event window and
// any cell that began without ending — the in-flight work at death.
//
// Constraints that shape the design:
//  - record() sits on hot paths next to obs::Counter::add, so the disabled
//    path is one relaxed load + branch (measured in bench_overhead) and the
//    enabled path is a couple of stores into this thread's own cache lines.
//  - The dump runs inside a signal handler: no malloc, no stdio, no locks.
//    Rings live in leaked heap blocks reachable from a fixed pointer table,
//    details are sanitised to plain ASCII at record() time (so the dump can
//    quote them verbatim), and all formatting is hand-rolled over write(2).
//  - Entries use a per-entry seqlock (seq written last, release order; 0 =
//    torn) so the dumper can skip a slot that was mid-overwrite.  In-process
//    readers (dump_now in tests) must quiesce writers first — the signal
//    path has no such luxury and accepts a torn slot's loss.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace tdfm::obs::flight {

namespace detail {
extern std::atomic<bool> g_flight_enabled;
}

/// What happened.  Kept deliberately coarse: the recorder answers "where
/// was each thread when we died", not "what is the full trace".
enum class EventKind : std::uint8_t {
  kSpanBegin = 0,
  kSpanEnd = 1,
  kJournalAppend = 2,
  kCellBegin = 3,
  kCellEnd = 4,
  kStealClaim = 5,
  kHotSwap = 6,
};

/// Master switch; off by default.  record() is a no-op while disabled, and
/// enabled() is inline so call sites pay one relaxed load + branch.
void set_enabled(bool on);
[[nodiscard]] inline bool enabled() {
  return detail::g_flight_enabled.load(std::memory_order_relaxed);
}

/// Appends an event to this thread's ring.  `detail` is truncated to the
/// entry's inline capacity (46 bytes) and sanitised to printable ASCII.
void record(EventKind kind, std::string_view detail);

/// Installs SIGSEGV/SIGABRT/SIGBUS handlers that dump to
/// `<dir>/crash-<pid>.json`, then re-raise with the default disposition
/// (the exit status still says "killed by signal N").  Also enables
/// recording.  `label` (e.g. "shard 1/3") is embedded in the dump.
/// Idempotent; the latest dir/label wins.
void install_crash_handler(const std::string& dir, std::string_view label = {});

/// Synchronous dump of every ring to `path` (same bytes the crash handler
/// writes; `signal` 0 marks a requested dump).  Returns false if the file
/// cannot be opened.  Callers must quiesce recording threads first.
bool dump_now(const std::string& path, int signal = 0);

}  // namespace tdfm::obs::flight
