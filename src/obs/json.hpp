// Minimal JSON emission helpers shared by the obs exporters (JSONL metrics,
// Chrome trace, bench result files).  Emission only — parsing lives in the
// tests that validate the exported schemas.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace tdfm::obs {

/// Escapes a string for use inside a JSON string literal (no quotes added).
[[nodiscard]] inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Renders a double as a JSON number ("null" for non-finite values, which
/// JSON cannot represent).
[[nodiscard]] inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Quoted + escaped JSON string literal.
[[nodiscard]] inline std::string json_string(std::string_view s) {
  return '"' + json_escape(s) + '"';
}

}  // namespace tdfm::obs
