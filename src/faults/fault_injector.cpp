#include "faults/fault_injector.hpp"

#include <cmath>
#include <cstdio>
#include <numeric>

#include "core/logging.hpp"

namespace tdfm::faults {

const char* fault_name(FaultType type) {
  switch (type) {
    case FaultType::kMislabelling: return "mislabelling";
    case FaultType::kRepetition: return "repetition";
    case FaultType::kRemoval: return "removal";
  }
  return "unknown";
}

FaultType fault_from_name(std::string_view name) {
  if (name == "mislabelling" || name == "mislabel") return FaultType::kMislabelling;
  if (name == "repetition" || name == "repeat") return FaultType::kRepetition;
  if (name == "removal" || name == "remove") return FaultType::kRemoval;
  throw ConfigError("unknown fault type: " + std::string(name));
}

std::string FaultSpec::to_string() const {
  // Print the actual percentage with trailing zeros trimmed: rounding to an
  // integer collapsed distinct specs (12.5% and 13%) onto one report key.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", percent);
  return std::string(fault_name(type)) + "@" + buf + "%";
}

namespace {

std::size_t affected_count(std::size_t n, double percent) {
  TDFM_CHECK(percent >= 0.0 && percent <= 100.0, "fault percent in [0, 100]");
  return static_cast<std::size_t>(std::llround(static_cast<double>(n) * percent / 100.0));
}

void apply_mislabelling(data::Dataset& ds, double percent, Rng& rng,
                        InjectionReport& report) {
  TDFM_CHECK(ds.num_classes >= 2, "mislabelling needs at least two classes");
  const std::size_t k = affected_count(ds.size(), percent);
  const auto victims = rng.sample_without_replacement(ds.size(), k);
  for (const std::size_t i : victims) {
    // Uniformly random *different* label.
    const auto offset = 1 + rng.index(ds.num_classes - 1);
    ds.labels[i] = static_cast<int>(
        (static_cast<std::size_t>(ds.labels[i]) + offset) % ds.num_classes);
  }
  report.mislabelled += k;
}

void apply_repetition(data::Dataset& ds, double percent, Rng& rng,
                      InjectionReport& report) {
  const std::size_t k = affected_count(ds.size(), percent);
  const auto sources = rng.sample_without_replacement(ds.size(), k);
  const data::Dataset copies = ds.subset(sources);
  ds = data::concatenate(ds, copies);
  report.repeated += k;
}

void apply_removal(data::Dataset& ds, double percent, Rng& rng,
                   InjectionReport& report) {
  const std::size_t k = affected_count(ds.size(), percent);
  TDFM_CHECK(k < ds.size(), "removal would delete the whole dataset");
  auto doomed = rng.sample_without_replacement(ds.size(), k);
  std::vector<bool> remove(ds.size(), false);
  for (const std::size_t i : doomed) remove[i] = true;
  std::vector<std::size_t> keep;
  keep.reserve(ds.size() - k);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (!remove[i]) keep.push_back(i);
  }
  ds = ds.subset(keep);
  report.removed += k;
}

}  // namespace

data::Dataset inject(const data::Dataset& clean, std::span<const FaultSpec> faults,
                     Rng& rng, InjectionReport* report) {
  clean.validate();
  data::Dataset faulty = clean.subset([&] {
    std::vector<std::size_t> all(clean.size());
    std::iota(all.begin(), all.end(), std::size_t{0});
    return all;
  }());
  InjectionReport local;
  local.original_size = clean.size();
  for (const FaultSpec& fault : faults) {
    switch (fault.type) {
      case FaultType::kMislabelling:
        apply_mislabelling(faulty, fault.percent, rng, local);
        break;
      case FaultType::kRepetition:
        apply_repetition(faulty, fault.percent, rng, local);
        break;
      case FaultType::kRemoval:
        apply_removal(faulty, fault.percent, rng, local);
        break;
    }
  }
  local.resulting_size = faulty.size();
  faulty.validate();
  TDFM_LOG(kDebug) << "injected faults into " << clean.name << ": "
                   << local.mislabelled << " mislabelled, " << local.repeated
                   << " repeated, " << local.removed << " removed";
  if (report != nullptr) *report = local;
  return faulty;
}

data::Dataset inject(const data::Dataset& clean, FaultSpec fault, Rng& rng,
                     InjectionReport* report) {
  return inject(clean, std::span<const FaultSpec>(&fault, 1), rng, report);
}

}  // namespace tdfm::faults
