// Training-data fault injector — the TF-DM [51] equivalent.
//
// Implements the paper's three fault types (§I):
//   - mislabelling: a fraction of samples get a different label, chosen
//     uniformly at random among the other classes;
//   - repetition:   a fraction of samples are duplicated (appended);
//   - removal:      a fraction of samples are deleted.
// Faults are injected *before* any TDFM technique runs, matching the
// experiment pipeline of Fig. 2.  Injection is deterministic in the Rng and
// fault combinations are applied in the listed order (mislabelling first so
// later removals can delete mislabelled entries, as with real pipelines).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace tdfm::faults {

enum class FaultType { kMislabelling, kRepetition, kRemoval };

[[nodiscard]] const char* fault_name(FaultType type);
[[nodiscard]] FaultType fault_from_name(std::string_view name);

/// One fault injection campaign: `percent` of the *current* training set is
/// affected (the paper sweeps 10, 30, 50).
struct FaultSpec {
  FaultType type = FaultType::kMislabelling;
  double percent = 10.0;

  [[nodiscard]] std::string to_string() const;
};

/// What the injector actually did, for logging and tests.
struct InjectionReport {
  std::size_t original_size = 0;
  std::size_t resulting_size = 0;
  std::size_t mislabelled = 0;
  std::size_t repeated = 0;
  std::size_t removed = 0;
};

/// Returns a faulty copy of `clean`; the input is never modified (golden
/// models keep training on it).
[[nodiscard]] data::Dataset inject(const data::Dataset& clean,
                                   std::span<const FaultSpec> faults, Rng& rng,
                                   InjectionReport* report = nullptr);

/// Convenience overload for a single fault type.
[[nodiscard]] data::Dataset inject(const data::Dataset& clean, FaultSpec fault,
                                   Rng& rng, InjectionReport* report = nullptr);

}  // namespace tdfm::faults
