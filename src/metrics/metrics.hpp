// Reliability metrics (§III-C).
//
// The paper's central metric is the Accuracy Delta (AD): the proportion of
// test images misclassified by the faulty model *out of those the golden
// model classified correctly*.  Unlike a raw accuracy drop, AD does not
// double-count images that both models get wrong, isolating the effect of
// the injected training-data faults.  Lower AD = more resilient.
#pragma once

#include <span>
#include <vector>

namespace tdfm::metrics {

/// Fraction of predictions equal to the true label.
[[nodiscard]] double accuracy(std::span<const int> predictions,
                              std::span<const int> truth);

/// Per-class accuracy; classes absent from `truth` report 0.
[[nodiscard]] std::vector<double> per_class_accuracy(std::span<const int> predictions,
                                                     std::span<const int> truth,
                                                     std::size_t num_classes);

/// Row-major confusion matrix: entry [t * K + p] counts samples of true
/// class t predicted as p.
[[nodiscard]] std::vector<std::size_t> confusion_matrix(
    std::span<const int> predictions, std::span<const int> truth,
    std::size_t num_classes);

/// Accuracy Delta per §III-C:
///   AD = |{i : golden correct AND faulty wrong}| / |{i : golden correct}|.
/// Returns 0 when the golden model classified nothing correctly.
[[nodiscard]] double accuracy_delta(std::span<const int> golden_predictions,
                                    std::span<const int> faulty_predictions,
                                    std::span<const int> truth);

/// The symmetric counterpart (golden wrong AND faulty correct, over golden
/// wrong) — the paper reports this quantity is insignificant; we expose it
/// so the claim can be checked (bench_overhead verbose mode, tests).
[[nodiscard]] double reverse_accuracy_delta(std::span<const int> golden_predictions,
                                            std::span<const int> faulty_predictions,
                                            std::span<const int> truth);

/// Naive accuracy drop max(0, acc_golden - acc_faulty); the ablation foil
/// for AD discussed in DESIGN.md §5.
[[nodiscard]] double naive_accuracy_drop(std::span<const int> golden_predictions,
                                         std::span<const int> faulty_predictions,
                                         std::span<const int> truth);

}  // namespace tdfm::metrics
