#include "metrics/metrics.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace tdfm::metrics {

namespace {
void check_aligned(std::span<const int> a, std::span<const int> b) {
  TDFM_CHECK(a.size() == b.size(), "prediction/label spans must align");
  TDFM_CHECK(!a.empty(), "metrics need at least one sample");
}
}  // namespace

double accuracy(std::span<const int> predictions, std::span<const int> truth) {
  check_aligned(predictions, truth);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (predictions[i] == truth[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

std::vector<double> per_class_accuracy(std::span<const int> predictions,
                                       std::span<const int> truth,
                                       std::size_t num_classes) {
  check_aligned(predictions, truth);
  std::vector<std::size_t> correct(num_classes, 0);
  std::vector<std::size_t> total(num_classes, 0);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const auto t = static_cast<std::size_t>(truth[i]);
    TDFM_CHECK(t < num_classes, "label out of range");
    ++total[t];
    if (predictions[i] == truth[i]) ++correct[t];
  }
  std::vector<double> out(num_classes, 0.0);
  for (std::size_t k = 0; k < num_classes; ++k) {
    if (total[k] > 0) {
      out[k] = static_cast<double>(correct[k]) / static_cast<double>(total[k]);
    }
  }
  return out;
}

std::vector<std::size_t> confusion_matrix(std::span<const int> predictions,
                                          std::span<const int> truth,
                                          std::size_t num_classes) {
  check_aligned(predictions, truth);
  std::vector<std::size_t> cm(num_classes * num_classes, 0);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const auto t = static_cast<std::size_t>(truth[i]);
    const auto p = static_cast<std::size_t>(predictions[i]);
    TDFM_CHECK(t < num_classes && p < num_classes, "class id out of range");
    ++cm[t * num_classes + p];
  }
  return cm;
}

double accuracy_delta(std::span<const int> golden_predictions,
                      std::span<const int> faulty_predictions,
                      std::span<const int> truth) {
  check_aligned(golden_predictions, truth);
  check_aligned(faulty_predictions, truth);
  std::size_t golden_correct = 0;
  std::size_t degraded = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (golden_predictions[i] != truth[i]) continue;
    ++golden_correct;
    if (faulty_predictions[i] != truth[i]) ++degraded;
  }
  if (golden_correct == 0) return 0.0;
  return static_cast<double>(degraded) / static_cast<double>(golden_correct);
}

double reverse_accuracy_delta(std::span<const int> golden_predictions,
                              std::span<const int> faulty_predictions,
                              std::span<const int> truth) {
  check_aligned(golden_predictions, truth);
  check_aligned(faulty_predictions, truth);
  std::size_t golden_wrong = 0;
  std::size_t recovered = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (golden_predictions[i] == truth[i]) continue;
    ++golden_wrong;
    if (faulty_predictions[i] == truth[i]) ++recovered;
  }
  if (golden_wrong == 0) return 0.0;
  return static_cast<double>(recovered) / static_cast<double>(golden_wrong);
}

double naive_accuracy_drop(std::span<const int> golden_predictions,
                           std::span<const int> faulty_predictions,
                           std::span<const int> truth) {
  const double g = accuracy(golden_predictions, truth);
  const double f = accuracy(faulty_predictions, truth);
  return std::max(0.0, g - f);
}

}  // namespace tdfm::metrics
