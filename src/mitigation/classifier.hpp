// Trained classifier abstraction returned by TDFM techniques.
#pragma once

#include <memory>
#include <vector>

#include "nn/trainer.hpp"

namespace tdfm::mitigation {

/// A fitted classifier.  Single networks and ensembles share this interface
/// so the experiment harness measures them identically.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Predicts a class id for every image in [N, C, H, W].
  [[nodiscard]] virtual std::vector<int> predict(const Tensor& images) = 0;

  /// Number of model evaluations per inference (1 for single models, n for
  /// ensembles) — the inference-overhead factor of §IV-E.
  [[nodiscard]] virtual double inference_model_count() const { return 1.0; }

  /// Converts the underlying model(s) to q8_0 inference form (irreversible,
  /// forward-only afterwards).  Returns false when the technique's deployed
  /// artifact has no weights to quantize (e.g. a bare fp32 wrapper without a
  /// network); callers then keep the fp32 predictions.
  virtual bool quantize_for_inference() { return false; }
};

/// Wraps one trained network.
class SingleModelClassifier final : public Classifier {
 public:
  explicit SingleModelClassifier(std::unique_ptr<nn::Network> net)
      : net_(std::move(net)) {
    TDFM_CHECK(net_ != nullptr, "classifier needs a network");
  }

  std::vector<int> predict(const Tensor& images) override {
    return nn::predict_classes(*net_, images);
  }

  bool quantize_for_inference() override {
    net_->quantize_for_inference();
    return true;
  }

  [[nodiscard]] nn::Network& network() { return *net_; }

  /// Transfers ownership of the fitted network out of the classifier (which
  /// becomes unusable).  The serving/pipeline layers use this to publish a
  /// technique's artifact into a ModelRegistry without copying the weights.
  [[nodiscard]] std::unique_ptr<nn::Network> release_network() {
    return std::move(net_);
  }

 private:
  std::unique_ptr<nn::Network> net_;
};

}  // namespace tdfm::mitigation
