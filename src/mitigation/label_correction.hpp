// Meta label correction technique (§III-B2), after Zheng et al. [17].
//
// Two networks train simultaneously: the *primary* model performs the
// classification task, while a *secondary* model learns — from a clean
// subset reserved from fault injection (fraction gamma) — to map the
// primary's predicted distribution plus the provided (possibly wrong) label
// to a corrected label distribution.  Between epochs the secondary refreshes
// the soft targets the primary trains on.
//
// The secondary is a multilayer perceptron over [primary probs ‖ one-hot
// given label] (2K inputs, K outputs).  As the paper observes (§IV-D), this
// MLP degrades as the class count grows — the 43-class GTSRB overwhelms it
// while 10-class CIFAR and 2-class Pneumonia remain tractable — and acts as
// an additional soft loss that hurts shallow primaries (§IV-B).
#pragma once

#include "mitigation/technique.hpp"

namespace tdfm::mitigation {

class LabelCorrectionTechnique final : public Technique {
 public:
  explicit LabelCorrectionTechnique(double gamma = 0.1, std::size_t hidden = 32,
                                    std::size_t secondary_steps = 8)
      : gamma_(gamma), hidden_(hidden), secondary_steps_(secondary_steps) {}

  [[nodiscard]] std::string name() const override { return "LC"; }
  [[nodiscard]] std::unique_ptr<Classifier> fit(const FitContext& ctx) override;
  [[nodiscard]] bool wants_clean_subset() const override { return true; }

  [[nodiscard]] double gamma() const { return gamma_; }

 private:
  double gamma_;
  std::size_t hidden_;
  std::size_t secondary_steps_;
};

}  // namespace tdfm::mitigation
