#include "mitigation/knowledge_distillation.hpp"

#include <cmath>

#include "nn/loss.hpp"

namespace tdfm::mitigation {

std::unique_ptr<Classifier> KnowledgeDistillationTechnique::fit(
    const FitContext& ctx) {
  ctx.validate();

  // Phase 1: teacher (same architecture — self distillation) on hard labels.
  Rng teacher_rng = ctx.rng->fork(0x7eacu);
  auto teacher = models::build_model(ctx.primary_arch, ctx.model_config, teacher_rng);
  auto hard_targets = std::make_shared<Tensor>(
      nn::one_hot(ctx.train->labels, ctx.train->num_classes));
  {
    nn::Trainer trainer(ctx.options_for(ctx.primary_arch));
    Rng train_rng = ctx.rng->fork(0x7161u);
    trainer.fit(*teacher, ctx.train->images,
                make_target_loss(std::make_shared<nn::CrossEntropyLoss>(), hard_targets),
                train_rng);
  }

  // Capture the teacher's distilled (temperature-T) softmax over the
  // training set once; the teacher is frozen from here on.
  const auto teacher_probs = std::make_shared<Tensor>(
      nn::predict_probabilities(*teacher, ctx.train->images, temperature_));

  // Phase 2: student trained on the alpha-weighted hard + distilled loss,
  // for a reduced number of epochs (it "trains faster than the parent").
  Rng student_rng = ctx.rng->fork(0x57d7u);
  auto student = models::build_model(ctx.primary_arch, ctx.model_config, student_rng);
  nn::TrainOptions student_opts = ctx.options_for(ctx.primary_arch);
  student_opts.epochs = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(
             static_cast<double>(ctx.train_opts.epochs) * student_epoch_factor_)));
  const auto kd_loss = std::make_shared<nn::DistillationLoss>(alpha_, temperature_);
  nn::BatchLossFn loss_fn = [kd_loss, hard_targets, teacher_probs](
                                const Tensor& logits,
                                std::span<const std::size_t> idx,
                                Tensor& grad_logits) {
    const Tensor hard = nn::Trainer::gather(*hard_targets, idx);
    const Tensor soft = nn::Trainer::gather(*teacher_probs, idx);
    return kd_loss->compute(logits, hard, soft, grad_logits);
  };
  nn::Trainer trainer(student_opts);
  Rng train_rng = ctx.rng->fork(0x7162u);
  trainer.fit(*student, ctx.train->images, std::move(loss_fn), train_rng);
  return std::make_unique<SingleModelClassifier>(std::move(student));
}

}  // namespace tdfm::mitigation
