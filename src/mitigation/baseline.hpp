// Unprotected baseline: plain cross-entropy training, no mitigation.
#pragma once

#include "mitigation/technique.hpp"

namespace tdfm::mitigation {

class BaselineTechnique final : public Technique {
 public:
  [[nodiscard]] std::string name() const override { return "Base"; }
  [[nodiscard]] std::unique_ptr<Classifier> fit(const FitContext& ctx) override;
};

}  // namespace tdfm::mitigation
