#include "mitigation/label_smoothing.hpp"

#include "nn/loss.hpp"

namespace tdfm::mitigation {

std::unique_ptr<Classifier> LabelSmoothingTechnique::fit(const FitContext& ctx) {
  ctx.validate();
  Rng model_rng = ctx.rng->fork(0x15u);
  auto net = models::build_model(ctx.primary_arch, ctx.model_config, model_rng);
  auto targets = std::make_shared<Tensor>(
      nn::one_hot(ctx.train->labels, ctx.train->num_classes));
  std::shared_ptr<nn::Loss> loss;
  if (use_relaxation_) {
    loss = std::make_shared<nn::LabelRelaxationLoss>(alpha_);
  } else {
    loss = std::make_shared<nn::SmoothedCrossEntropyLoss>(alpha_);
  }
  nn::Trainer trainer(ctx.options_for(ctx.primary_arch));
  Rng train_rng = ctx.rng->fork(0x7151u);
  trainer.fit(*net, ctx.train->images, make_target_loss(std::move(loss), targets),
              train_rng);
  return std::make_unique<SingleModelClassifier>(std::move(net));
}

}  // namespace tdfm::mitigation
