// Ensemble learning technique (§III-B5).
//
// Trains n diverse architectures on the same (faulty) data and combines
// their inference-time predictions by simple majority vote (ties broken by
// summed softmax confidence).  The paper's ensemble is the five models with
// the lowest baseline AD: ConvNet, MobileNet, ResNet18, VGG11, VGG16 (§IV);
// that is the default member set here.  Training overhead ~n x, inference
// overhead n x (§IV-E).
#pragma once

#include "mitigation/technique.hpp"

namespace tdfm::mitigation {

/// Classifier over multiple trained member networks.
class EnsembleClassifier final : public Classifier {
 public:
  explicit EnsembleClassifier(std::vector<std::unique_ptr<nn::Network>> members)
      : members_(std::move(members)) {
    TDFM_CHECK(!members_.empty(), "ensemble needs at least one member");
  }

  std::vector<int> predict(const Tensor& images) override;

  [[nodiscard]] double inference_model_count() const override {
    return static_cast<double>(members_.size());
  }

  bool quantize_for_inference() override {
    for (auto& m : members_) m->quantize_for_inference();
    return true;
  }

  [[nodiscard]] std::size_t size() const { return members_.size(); }
  [[nodiscard]] nn::Network& member(std::size_t i) { return *members_.at(i); }

 private:
  std::vector<std::unique_ptr<nn::Network>> members_;
};

class EnsembleTechnique final : public Technique {
 public:
  /// Default member set = the paper's five lowest-baseline-AD models.
  explicit EnsembleTechnique(std::vector<models::Arch> members = default_members());

  [[nodiscard]] static std::vector<models::Arch> default_members();

  [[nodiscard]] std::string name() const override { return "Ens"; }
  [[nodiscard]] std::unique_ptr<Classifier> fit(const FitContext& ctx) override;

  [[nodiscard]] const std::vector<models::Arch>& members() const { return members_; }

 private:
  std::vector<models::Arch> members_;
};

}  // namespace tdfm::mitigation
