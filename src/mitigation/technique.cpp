#include "mitigation/technique.hpp"

#include "nn/loss.hpp"

namespace tdfm::mitigation {

void FitContext::validate() const {
  TDFM_CHECK(train != nullptr, "FitContext needs training data");
  TDFM_CHECK(rng != nullptr, "FitContext needs an Rng");
  train->validate();
  TDFM_CHECK(train->num_classes == model_config.num_classes,
             "dataset/model class count mismatch");
  TDFM_CHECK(train->channels() == model_config.in_channels,
             "dataset/model channel mismatch");
  if (clean_subset != nullptr) {
    clean_subset->validate();
    TDFM_CHECK(clean_subset->num_classes == train->num_classes,
               "clean subset class count mismatch");
  }
}

nn::BatchLossFn make_target_loss(std::shared_ptr<nn::Loss> loss,
                                 std::shared_ptr<Tensor> targets) {
  TDFM_CHECK(loss != nullptr && targets != nullptr, "null loss or targets");
  return [loss = std::move(loss), targets = std::move(targets)](
             const Tensor& logits, std::span<const std::size_t> idx,
             Tensor& grad_logits) {
    const Tensor batch_targets = nn::Trainer::gather(*targets, idx);
    return loss->compute(logits, batch_targets, grad_logits);
  };
}

}  // namespace tdfm::mitigation
