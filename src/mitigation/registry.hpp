// Technique registry: names, kinds and a configured factory.
#pragma once

#include <memory>
#include <vector>

#include "mitigation/technique.hpp"

namespace tdfm::mitigation {

enum class TechniqueKind {
  kBaseline,
  kLabelSmoothing,
  kLabelCorrection,
  kRobustLoss,
  kKnowledgeDistillation,
  kEnsemble,
};

[[nodiscard]] const char* technique_name(TechniqueKind kind);
[[nodiscard]] TechniqueKind technique_from_name(std::string_view name);

/// All six kinds, in the paper's table-column order: Base LS LC RL KD Ens.
[[nodiscard]] std::vector<TechniqueKind> all_techniques();

/// The five TDFM techniques (without the baseline).
[[nodiscard]] std::vector<TechniqueKind> tdfm_techniques();

/// Hyperparameters for every technique — defaults follow the values the
/// respective original papers recommend (§IV: "we used the hyperparameters
/// recommended by the implementers of the techniques").
struct Hyperparameters {
  float ls_alpha = 0.1F;
  bool ls_use_relaxation = true;
  double lc_gamma = 0.1;
  std::size_t lc_hidden = 32;
  std::size_t lc_secondary_steps = 8;
  float rl_alpha = 1.0F;
  float rl_beta = 1.0F;
  float kd_alpha = 0.9F;
  float kd_temperature = 4.0F;
  double kd_student_epoch_factor = 0.5;
  std::vector<models::Arch> ens_members;  ///< empty -> paper's default five
};

/// Instantiates a technique of the given kind with the given hyperparameters.
[[nodiscard]] std::unique_ptr<Technique> make_technique(
    TechniqueKind kind, const Hyperparameters& hp = {});

}  // namespace tdfm::mitigation
