#include "mitigation/registry.hpp"

#include "mitigation/baseline.hpp"
#include "mitigation/ensemble.hpp"
#include "mitigation/knowledge_distillation.hpp"
#include "mitigation/label_correction.hpp"
#include "mitigation/label_smoothing.hpp"
#include "mitigation/robust_loss.hpp"

namespace tdfm::mitigation {

const char* technique_name(TechniqueKind kind) {
  switch (kind) {
    case TechniqueKind::kBaseline: return "Base";
    case TechniqueKind::kLabelSmoothing: return "LS";
    case TechniqueKind::kLabelCorrection: return "LC";
    case TechniqueKind::kRobustLoss: return "RL";
    case TechniqueKind::kKnowledgeDistillation: return "KD";
    case TechniqueKind::kEnsemble: return "Ens";
  }
  return "unknown";
}

TechniqueKind technique_from_name(std::string_view name) {
  for (const TechniqueKind kind : all_techniques()) {
    if (name == technique_name(kind)) return kind;
  }
  throw ConfigError("unknown technique: " + std::string(name));
}

std::vector<TechniqueKind> all_techniques() {
  return {TechniqueKind::kBaseline,   TechniqueKind::kLabelSmoothing,
          TechniqueKind::kLabelCorrection, TechniqueKind::kRobustLoss,
          TechniqueKind::kKnowledgeDistillation, TechniqueKind::kEnsemble};
}

std::vector<TechniqueKind> tdfm_techniques() {
  return {TechniqueKind::kLabelSmoothing, TechniqueKind::kLabelCorrection,
          TechniqueKind::kRobustLoss, TechniqueKind::kKnowledgeDistillation,
          TechniqueKind::kEnsemble};
}

std::unique_ptr<Technique> make_technique(TechniqueKind kind,
                                          const Hyperparameters& hp) {
  switch (kind) {
    case TechniqueKind::kBaseline:
      return std::make_unique<BaselineTechnique>();
    case TechniqueKind::kLabelSmoothing:
      return std::make_unique<LabelSmoothingTechnique>(hp.ls_alpha,
                                                       hp.ls_use_relaxation);
    case TechniqueKind::kLabelCorrection:
      return std::make_unique<LabelCorrectionTechnique>(hp.lc_gamma, hp.lc_hidden,
                                                        hp.lc_secondary_steps);
    case TechniqueKind::kRobustLoss:
      return std::make_unique<RobustLossTechnique>(hp.rl_alpha, hp.rl_beta);
    case TechniqueKind::kKnowledgeDistillation:
      return std::make_unique<KnowledgeDistillationTechnique>(
          hp.kd_alpha, hp.kd_temperature, hp.kd_student_epoch_factor);
    case TechniqueKind::kEnsemble:
      return hp.ens_members.empty()
                 ? std::make_unique<EnsembleTechnique>()
                 : std::make_unique<EnsembleTechnique>(hp.ens_members);
  }
  throw ConfigError("unknown technique kind");
}

}  // namespace tdfm::mitigation
