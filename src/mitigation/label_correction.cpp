#include "mitigation/label_correction.hpp"

#include <cstring>
#include <numeric>

#include "core/logging.hpp"
#include "nn/activation.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "tensor/tensor_ops.hpp"

namespace tdfm::mitigation {

namespace {

/// Builds the secondary label-correction model: an MLP mapping
/// [primary probs ‖ one-hot given label] (2K) to corrected logits (K).
std::unique_ptr<nn::Network> build_secondary(std::size_t num_classes,
                                             std::size_t hidden, Rng& rng) {
  auto body = std::make_unique<nn::Sequential>();
  body->emplace<nn::Dense>(2 * num_classes, hidden, rng);
  body->emplace<nn::Tanh>();
  body->emplace<nn::Dense>(hidden, num_classes, rng);
  return std::make_unique<nn::Network>("LC-secondary", std::move(body), num_classes);
}

/// Assembles secondary-model inputs [n, 2K] from primary probabilities and
/// given labels.
Tensor secondary_inputs(const Tensor& primary_probs, std::span<const int> labels,
                        std::size_t num_classes) {
  const std::size_t n = labels.size();
  Tensor in(Shape{n, 2 * num_classes});
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(in.data() + i * 2 * num_classes,
                primary_probs.data() + i * num_classes,
                num_classes * sizeof(float));
    in.at(i, num_classes + static_cast<std::size_t>(labels[i])) = 1.0F;
  }
  return in;
}

}  // namespace

std::unique_ptr<Classifier> LabelCorrectionTechnique::fit(const FitContext& ctx) {
  ctx.validate();
  const std::size_t k = ctx.train->num_classes;

  // Clean subset: ideally reserved from fault injection by the harness;
  // otherwise carved out of the (faulty) training data as a fallback.
  data::Dataset carved;
  const data::Dataset* clean = ctx.clean_subset;
  data::Dataset noisy;
  if (clean == nullptr) {
    Rng split_rng = ctx.rng->fork(0x5114u);
    auto [head, tail] = data::random_split(*ctx.train, gamma_, split_rng);
    carved = std::move(head);
    noisy = std::move(tail);
    clean = &carved;
    TDFM_LOG(kWarn) << "label correction running without a reserved clean "
                       "subset; carving gamma from faulty data";
  } else {
    noisy = *ctx.train;
  }

  // The primary trains on noisy + clean; targets start as the given labels.
  const data::Dataset combined = data::concatenate(noisy, *clean);
  const std::size_t n_noisy = noisy.size();
  auto targets =
      std::make_shared<Tensor>(nn::one_hot(combined.labels, k));

  Rng primary_rng = ctx.rng->fork(0x1c01u);
  auto primary = models::build_model(ctx.primary_arch, ctx.model_config, primary_rng);

  Rng secondary_rng = ctx.rng->fork(0x1c02u);
  auto secondary = build_secondary(k, hidden_, secondary_rng);
  auto secondary_opt = std::make_shared<nn::SGD>(0.1F, 0.9F, 0.0F);
  auto batch_rng = std::make_shared<Rng>(ctx.rng->fork(0x1c03u));

  const bool correction_active = clean->size() >= 2 && n_noisy > 0;
  if (!correction_active) {
    TDFM_LOG(kWarn) << "clean subset too small; label correction inactive";
  }

  // Per-epoch meta step: (1) fit the secondary on the clean subset against
  // true labels, (2) rewrite the noisy rows' soft targets with the
  // secondary's corrections.
  nn::EpochHook hook = [&, this](std::size_t /*epoch*/, nn::Network& net) {
    if (!correction_active) return;
    // (1) Secondary update on clean data.
    const Tensor clean_probs = nn::predict_probabilities(net, clean->images);
    const Tensor sec_in = secondary_inputs(clean_probs, clean->labels, k);
    const Tensor sec_target = nn::one_hot(clean->labels, k);
    nn::CrossEntropyLoss ce;
    const auto params = secondary->parameters();
    const std::size_t batch = std::min<std::size_t>(32, clean->size());
    for (std::size_t step = 0; step < secondary_steps_; ++step) {
      const auto pick = batch_rng->sample_without_replacement(clean->size(), batch);
      const Tensor in = nn::Trainer::gather(sec_in, pick);
      const Tensor tgt = nn::Trainer::gather(sec_target, pick);
      secondary->zero_grad();
      const Tensor logits = secondary->logits(in, /*training=*/true);
      Tensor grad;
      (void)ce.compute(logits, tgt, grad);
      secondary->backward(grad);
      secondary_opt->step(params);
    }
    // (2) Correct the noisy portion's targets.
    std::vector<std::size_t> noisy_idx(n_noisy);
    std::iota(noisy_idx.begin(), noisy_idx.end(), std::size_t{0});
    const Tensor noisy_images = nn::Trainer::gather(combined.images, noisy_idx);
    const Tensor noisy_probs = nn::predict_probabilities(net, noisy_images);
    const std::span<const int> noisy_labels(combined.labels.data(), n_noisy);
    const Tensor sec_noisy_in = secondary_inputs(noisy_probs, noisy_labels, k);
    const Tensor corrected =
        softmax_rows(secondary->logits(sec_noisy_in, /*training=*/false));
    std::memcpy(targets->data(), corrected.data(), corrected.numel() * sizeof(float));
  };

  nn::Trainer trainer(ctx.options_for(ctx.primary_arch));
  Rng train_rng = ctx.rng->fork(0x7131u);
  trainer.fit(*primary, combined.images,
              make_target_loss(std::make_shared<nn::CrossEntropyLoss>(), targets),
              train_rng, hook);
  return std::make_unique<SingleModelClassifier>(std::move(primary));
}

}  // namespace tdfm::mitigation
