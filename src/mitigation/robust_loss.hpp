// Robust loss technique (§III-B3): Active-Passive Loss of Ma et al. [18],
// instantiated as alpha * NCE + beta * RCE.
#pragma once

#include "mitigation/technique.hpp"

namespace tdfm::mitigation {

class RobustLossTechnique final : public Technique {
 public:
  explicit RobustLossTechnique(float alpha = 1.0F, float beta = 1.0F)
      : alpha_(alpha), beta_(beta) {}

  [[nodiscard]] std::string name() const override { return "RL"; }
  [[nodiscard]] std::unique_ptr<Classifier> fit(const FitContext& ctx) override;

 private:
  float alpha_;
  float beta_;
};

}  // namespace tdfm::mitigation
