#include "mitigation/robust_loss.hpp"

#include "nn/loss.hpp"

namespace tdfm::mitigation {

std::unique_ptr<Classifier> RobustLossTechnique::fit(const FitContext& ctx) {
  ctx.validate();
  Rng model_rng = ctx.rng->fork(0x21u);
  auto net = models::build_model(ctx.primary_arch, ctx.model_config, model_rng);
  auto targets = std::make_shared<Tensor>(
      nn::one_hot(ctx.train->labels, ctx.train->num_classes));
  nn::Trainer trainer(ctx.options_for(ctx.primary_arch));
  Rng train_rng = ctx.rng->fork(0x7121u);
  trainer.fit(*net, ctx.train->images,
              make_target_loss(std::make_shared<nn::APLLoss>(alpha_, beta_), targets),
              train_rng);
  return std::make_unique<SingleModelClassifier>(std::move(net));
}

}  // namespace tdfm::mitigation
