// Knowledge distillation technique (§III-B4): self-distillation.
//
// A teacher with the *same architecture* as the student is trained on the
// (faulty) data with plain CE; its temperature-T softmax over the training
// set is then distilled into a fresh student trained with
//   L = (1 - alpha) * CE(hard) + alpha * T^2 * CE(soft)
// (Hinton et al. [48]; self-distillation per Zhang et al. [19]).  More
// weight goes to the teacher's distilled loss by default (alpha > 0.5),
// which is what produces the paper's "garbage in, garbage out" behaviour at
// high mislabelling rates: the student amplifies a noisy teacher.
//
// The student converges faster than the parent (it starts from distilled
// information), so it trains for `student_epoch_factor` of the teacher's
// epochs — reproducing the ~1.5x (not 2x) training overhead of §IV-E.
#pragma once

#include "mitigation/technique.hpp"

namespace tdfm::mitigation {

class KnowledgeDistillationTechnique final : public Technique {
 public:
  explicit KnowledgeDistillationTechnique(float alpha = 0.9F,
                                          float temperature = 4.0F,
                                          double student_epoch_factor = 0.5)
      : alpha_(alpha),
        temperature_(temperature),
        student_epoch_factor_(student_epoch_factor) {}

  [[nodiscard]] std::string name() const override { return "KD"; }
  [[nodiscard]] std::unique_ptr<Classifier> fit(const FitContext& ctx) override;

 private:
  float alpha_;
  float temperature_;
  double student_epoch_factor_;
};

}  // namespace tdfm::mitigation
