#include "mitigation/ensemble.hpp"

#include "core/thread_pool.hpp"
#include "nn/loss.hpp"
#include "tensor/tensor_ops.hpp"

namespace tdfm::mitigation {

std::vector<int> EnsembleClassifier::predict(const Tensor& images) {
  const std::size_t n = images.dim(0);
  const std::size_t k = members_.front()->num_classes();
  std::vector<std::size_t> votes(n * k, 0);
  std::vector<float> confidence(n * k, 0.0F);
  for (const auto& member : members_) {
    const Tensor probs = nn::predict_probabilities(*member, images);
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = probs.row(i);
      ++votes[i * k + argmax(row)];
      for (std::size_t j = 0; j < k; ++j) confidence[i * k + j] += row[j];
    }
  }
  std::vector<int> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Majority vote; ties (and only ties) fall back to summed confidence.
    std::size_t best = 0;
    for (std::size_t j = 1; j < k; ++j) {
      const std::size_t vj = votes[i * k + j];
      const std::size_t vb = votes[i * k + best];
      if (vj > vb || (vj == vb && confidence[i * k + j] > confidence[i * k + best])) {
        best = j;
      }
    }
    out[i] = static_cast<int>(best);
  }
  return out;
}

EnsembleTechnique::EnsembleTechnique(std::vector<models::Arch> members)
    : members_(std::move(members)) {
  TDFM_CHECK(!members_.empty(), "ensemble needs at least one member");
}

std::vector<models::Arch> EnsembleTechnique::default_members() {
  using models::Arch;
  return {Arch::kConvNet, Arch::kMobileNet, Arch::kResNet18, Arch::kVGG11,
          Arch::kVGG16};
}

std::unique_ptr<Classifier> EnsembleTechnique::fit(const FitContext& ctx) {
  ctx.validate();
  auto targets = std::make_shared<Tensor>(
      nn::one_hot(ctx.train->labels, ctx.train->num_classes));
  // Fork every member's init/shuffle streams up front, consuming ctx.rng in
  // the same order as the original serial loop; training can then proceed
  // concurrently — each member owns its streams, network, and optimiser, so
  // member-level parallelism is determinism-safe by construction.
  struct MemberStreams {
    Rng model_rng;
    Rng train_rng;
  };
  std::vector<MemberStreams> streams;
  streams.reserve(members_.size());
  for (std::size_t m = 0; m < members_.size(); ++m) {
    Rng model_rng = ctx.rng->fork(0xe500u + m);
    Rng train_rng = ctx.rng->fork(0x7171u + m);
    streams.push_back(MemberStreams{model_rng, train_rng});
  }
  std::vector<std::unique_ptr<nn::Network>> trained(members_.size());
  core::parallel_for(0, members_.size(), 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t m = lo; m < hi; ++m) {
      auto net = models::build_model(members_[m], ctx.model_config, streams[m].model_rng);
      nn::Trainer trainer(ctx.options_for(members_[m]));
      trainer.fit(*net, ctx.train->images,
                  make_target_loss(std::make_shared<nn::CrossEntropyLoss>(), targets),
                  streams[m].train_rng);
      trained[m] = std::move(net);
    }
  });
  return std::make_unique<EnsembleClassifier>(std::move(trained));
}

}  // namespace tdfm::mitigation
