// Label smoothing technique (§III-B1).
//
// Representative implementation: *label relaxation* (Lienen & Hüllermeier,
// AAAI'21 [16]), the technique marked with an asterisk in Table I.  The
// classical fixed-alpha smoothing of Szegedy et al. is also available for
// ablation (set `use_relaxation = false`).
#pragma once

#include "mitigation/technique.hpp"

namespace tdfm::mitigation {

class LabelSmoothingTechnique final : public Technique {
 public:
  explicit LabelSmoothingTechnique(float alpha = 0.1F, bool use_relaxation = true)
      : alpha_(alpha), use_relaxation_(use_relaxation) {}

  [[nodiscard]] std::string name() const override { return "LS"; }
  [[nodiscard]] std::unique_ptr<Classifier> fit(const FitContext& ctx) override;

  [[nodiscard]] float alpha() const { return alpha_; }
  [[nodiscard]] bool uses_relaxation() const { return use_relaxation_; }

 private:
  float alpha_;
  bool use_relaxation_;
};

}  // namespace tdfm::mitigation
