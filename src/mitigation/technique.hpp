// TDFM technique interface (the study's unit of comparison).
//
// A Technique receives the (possibly fault-injected) training data plus the
// architecture under test and returns a fitted Classifier.  The five
// techniques of the paper — label smoothing, label correction, robust loss,
// knowledge distillation, ensembles — plus the unprotected baseline all
// implement this interface, which is what makes the comparison
// "apples-to-apples": identical data, trainer, and measurement path.
#pragma once

#include <memory>
#include <string>

#include "data/dataset.hpp"
#include "mitigation/classifier.hpp"
#include "models/model_zoo.hpp"
#include "nn/loss.hpp"

namespace tdfm::mitigation {

/// Everything a technique needs to train.
struct FitContext {
  /// Fault-injected training data (or clean data for golden runs).
  const data::Dataset* train = nullptr;

  /// Clean subset reserved from fault injection — only consumed by meta
  /// label correction (§III-B2: "a clean subset is formed by reserving a
  /// portion of the training data from fault injection").  Null for other
  /// techniques, and LC falls back to carving a subset out of `train`
  /// (degraded: that subset may itself be faulty).
  const data::Dataset* clean_subset = nullptr;

  /// Architecture under test ("the model" of the paper's figures).  The
  /// ensemble technique ignores it and trains its fixed member set.
  models::Arch primary_arch = models::Arch::kConvNet;

  /// Input geometry / width shared by all instantiated models.
  models::ModelConfig model_config;

  /// Trainer hyperparameters (epochs, lr, batch size).
  nn::TrainOptions train_opts;

  /// Per-trial random stream; techniques fork it for every model they init.
  Rng* rng = nullptr;

  /// Trainer options with per-architecture optimiser tuning applied — every
  /// technique trains each model it instantiates with options_for(arch), so
  /// ensemble members and distillation students each get the optimiser that
  /// suits their architecture.
  [[nodiscard]] nn::TrainOptions options_for(models::Arch arch) const {
    return models::tuned_options(arch, train_opts);
  }

  void validate() const;
};

class Technique {
 public:
  virtual ~Technique() = default;

  /// Short label as used in the paper's tables: Base, LS, LC, RL, KD, Ens.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Trains on ctx.train and returns the fitted classifier.
  [[nodiscard]] virtual std::unique_ptr<Classifier> fit(const FitContext& ctx) = 0;

  /// Whether the technique consumes the reserved clean subset (LC only);
  /// the harness uses this to decide how to split before injection.
  [[nodiscard]] virtual bool wants_clean_subset() const { return false; }
};

/// Builds a BatchLossFn that serves per-sample rows of `targets` [N, K] to
/// the given loss.  Most techniques are "a different loss over (possibly
/// transformed) targets"; this is their shared plumbing.
[[nodiscard]] nn::BatchLossFn make_target_loss(std::shared_ptr<nn::Loss> loss,
                                               std::shared_ptr<Tensor> targets);

}  // namespace tdfm::mitigation
