#include "experiment/experiment.hpp"

#include <algorithm>

#include "core/logging.hpp"
#include "metrics/metrics.hpp"
#include "mitigation/baseline.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace tdfm::experiment {

std::string StudyConfig::fault_level_name(std::size_t index) const {
  TDFM_CHECK(index < fault_levels.size(), "fault level index out of range");
  const FaultLevel& level = fault_levels[index];
  if (level.empty()) return "none";
  std::string out;
  for (std::size_t i = 0; i < level.size(); ++i) {
    if (i) out += "+";
    out += level[i].to_string();
  }
  return out;
}

std::vector<double> CellResult::ad_samples() const {
  std::vector<double> out;
  out.reserve(trials.size());
  for (const TrialOutcome& t : trials) out.push_back(t.ad);
  return out;
}

const CellResult& StudyResult::cell(std::size_t fault_level,
                                    mitigation::TechniqueKind kind) const {
  TDFM_CHECK(fault_level < cells.size(), "fault level out of range");
  for (std::size_t i = 0; i < config.techniques.size(); ++i) {
    if (config.techniques[i] == kind) return cells[fault_level][i];
  }
  throw ConfigError("technique not part of this study");
}

std::vector<FaultLevel> standard_sweep(faults::FaultType type) {
  std::vector<FaultLevel> levels;
  for (const double pct : {10.0, 30.0, 50.0}) {
    levels.push_back({faults::FaultSpec{type, pct}});
  }
  return levels;
}

namespace {

/// Fills a TrialOutcome from predictions and timings.
TrialOutcome measure_outcome(std::span<const int> golden_preds,
                             std::span<const int> preds,
                             std::span<const int> truth, double golden_acc,
                             double train_s, double infer_s, double models_used) {
  TrialOutcome o;
  o.golden_accuracy = golden_acc;
  o.train_seconds = train_s;
  o.infer_seconds = infer_s;
  o.inference_models = models_used;
  o.faulty_accuracy = metrics::accuracy(preds, truth);
  o.ad = metrics::accuracy_delta(golden_preds, preds, truth);
  o.reverse_ad = metrics::reverse_accuracy_delta(golden_preds, preds, truth);
  o.naive_drop = metrics::naive_accuracy_drop(golden_preds, preds, truth);
  return o;
}

/// One JSONL record per study cell when telemetry is on (--metrics flag):
/// the per-technique overhead numbers of §IV-E in machine-readable form.
void emit_cell_record(const std::string& model, const std::string& fault_level,
                      const std::string& technique, std::size_t trial,
                      double train_s, double infer_s, double accuracy, double ad) {
  if (!obs::telemetry_enabled()) return;
  obs::CellRecord rec;
  rec.model = model;
  rec.fault_level = fault_level;
  rec.technique = technique;
  rec.trial = trial + 1;
  rec.train_seconds = train_s;
  rec.infer_seconds = infer_s;
  rec.accuracy = accuracy;
  rec.ad = ad;
  obs::emit_cell(rec);
}

void aggregate_cells(StudyResult& result) {
  for (auto& row : result.cells) {
    for (CellResult& cell : row) {
      std::vector<double> ad, acc, train_s, infer_s;
      for (const TrialOutcome& t : cell.trials) {
        ad.push_back(t.ad);
        acc.push_back(t.faulty_accuracy);
        train_s.push_back(t.train_seconds);
        infer_s.push_back(t.infer_seconds);
      }
      cell.ad = summarize(ad);
      cell.faulty_accuracy = summarize(acc);
      cell.train_seconds = summarize(train_s);
      cell.infer_seconds = summarize(infer_s);
      cell.inference_models =
          cell.trials.empty() ? 1.0 : cell.trials.front().inference_models;
    }
  }
}

}  // namespace

std::vector<StudyResult> run_multi_model_study(const StudyConfig& proto,
                                               std::span<const models::Arch> archs) {
  TDFM_CHECK(proto.trials > 0, "study needs at least one trial");
  TDFM_CHECK(!proto.techniques.empty(), "study needs at least one technique");
  TDFM_CHECK(!proto.fault_levels.empty(), "study needs at least one fault level");
  TDFM_CHECK(!archs.empty(), "study needs at least one architecture");

  data::SyntheticSpec spec = proto.dataset;
  spec.seed = proto.seed ^ 0x5eedDa7aULL;
  const data::TrainTestPair dataset = data::generate(spec);
  const models::ModelConfig model_config =
      models::ModelConfig::for_dataset(spec, proto.model_width);

  std::vector<StudyResult> results(archs.size());
  std::vector<std::vector<double>> golden_acc(archs.size());
  std::vector<std::vector<double>> golden_train(archs.size());
  std::vector<std::vector<double>> golden_infer(archs.size());
  for (std::size_t a = 0; a < archs.size(); ++a) {
    results[a].config = proto;
    results[a].config.model = archs[a];
    results[a].cells.assign(proto.fault_levels.size(),
                            std::vector<CellResult>(proto.techniques.size()));
  }

  Rng master(proto.seed);
  for (std::size_t trial = 0; trial < proto.trials; ++trial) {
    Rng trial_rng = master.fork(trial + 1);

    // --- Golden models: each architecture on clean data, no technique.
    std::vector<std::vector<int>> golden_preds(archs.size());
    std::vector<double> golden_accuracy(archs.size());
    for (std::size_t a = 0; a < archs.size(); ++a) {
      mitigation::BaselineTechnique golden_technique;
      mitigation::FitContext ctx;
      ctx.train = &dataset.train;
      ctx.primary_arch = archs[a];
      ctx.model_config = model_config;
      ctx.train_opts = proto.train_opts;
      Rng golden_rng = trial_rng.fork(11 + a);
      ctx.rng = &golden_rng;
      obs::Span train_span("golden:fit");
      const auto golden = golden_technique.fit(ctx);
      golden_train[a].push_back(train_span.stop());
      obs::Span infer_span("golden:predict");
      golden_preds[a] = golden->predict(dataset.test.images);
      golden_infer[a].push_back(infer_span.stop());
      golden_accuracy[a] =
          metrics::accuracy(golden_preds[a], dataset.test.labels);
      golden_acc[a].push_back(golden_accuracy[a]);
      emit_cell_record(models::arch_name(archs[a]), "none", "golden", trial,
                       golden_train[a].back(), golden_infer[a].back(),
                       golden_accuracy[a], /*ad=*/0.0);
      TDFM_LOG(kInfo) << dataset.train.name << " " << models::arch_name(archs[a])
                      << " trial " << trial + 1 << ": golden acc "
                      << golden_accuracy[a];
    }

    // --- Fault levels x techniques.
    for (std::size_t fl = 0; fl < proto.fault_levels.size(); ++fl) {
      const FaultLevel& faults_at_level = proto.fault_levels[fl];
      Rng inject_rng = trial_rng.fork(1000 + fl);
      const data::Dataset faulty =
          faults::inject(dataset.train, faults_at_level, inject_rng);

      for (std::size_t ti = 0; ti < proto.techniques.size(); ++ti) {
        const auto kind = proto.techniques[ti];

        if (kind == mitigation::TechniqueKind::kEnsemble) {
          // The ensemble's member set does not depend on the panel model:
          // train once, measure against every panel's golden predictions.
          auto technique = mitigation::make_technique(kind, proto.hyperparams);
          mitigation::FitContext ctx;
          ctx.train = &faulty;
          ctx.primary_arch = archs.front();
          ctx.model_config = model_config;
          ctx.train_opts = proto.train_opts;
          Rng fit_rng = trial_rng.fork(4000 + fl * 101 + ti);
          ctx.rng = &fit_rng;
          const std::string tname = mitigation::technique_name(kind);
          obs::Span fit_span("fit:" + tname);
          const auto classifier = technique->fit(ctx);
          const double train_s = fit_span.stop();
          obs::Span predict_span("predict:" + tname);
          const std::vector<int> preds = classifier->predict(dataset.test.images);
          const double infer_s = predict_span.stop();
          for (std::size_t a = 0; a < archs.size(); ++a) {
            const TrialOutcome outcome = measure_outcome(
                golden_preds[a], preds, dataset.test.labels, golden_accuracy[a],
                train_s, infer_s, classifier->inference_model_count());
            emit_cell_record(models::arch_name(archs[a]),
                             proto.fault_level_name(fl), tname, trial, train_s,
                             infer_s, outcome.faulty_accuracy, outcome.ad);
            results[a].cells[fl][ti].trials.push_back(outcome);
          }
          continue;
        }

        for (std::size_t a = 0; a < archs.size(); ++a) {
          auto technique = mitigation::make_technique(kind, proto.hyperparams);
          mitigation::FitContext ctx;
          ctx.primary_arch = archs[a];
          ctx.model_config = model_config;
          ctx.train_opts = proto.train_opts;

          // Meta label correction gets its clean subset reserved *before*
          // injection; the remaining data receives the same fault campaign.
          data::Dataset lc_clean;
          data::Dataset lc_noisy;
          if (technique->wants_clean_subset()) {
            Rng split_rng = trial_rng.fork(2000 + fl);
            auto [head, rest] = data::random_split(
                dataset.train, proto.hyperparams.lc_gamma, split_rng);
            lc_clean = std::move(head);
            Rng lc_inject_rng = trial_rng.fork(3000 + fl);
            lc_noisy = faults::inject(rest, faults_at_level, lc_inject_rng);
            ctx.train = &lc_noisy;
            ctx.clean_subset = &lc_clean;
          } else {
            ctx.train = &faulty;
          }

          Rng fit_rng = trial_rng.fork(4000 + fl * 101 + ti * 7 + a);
          ctx.rng = &fit_rng;
          const std::string tname = mitigation::technique_name(kind);
          obs::Span fit_span("fit:" + tname);
          const auto classifier = technique->fit(ctx);
          const double train_s = fit_span.stop();
          obs::Span predict_span("predict:" + tname);
          const std::vector<int> preds = classifier->predict(dataset.test.images);
          const double infer_s = predict_span.stop();
          const TrialOutcome outcome = measure_outcome(
              golden_preds[a], preds, dataset.test.labels, golden_accuracy[a],
              train_s, infer_s, classifier->inference_model_count());
          emit_cell_record(models::arch_name(archs[a]),
                           proto.fault_level_name(fl), tname, trial, train_s,
                           infer_s, outcome.faulty_accuracy, outcome.ad);
          TDFM_LOG(kInfo) << "  " << models::arch_name(archs[a]) << " "
                          << proto.fault_level_name(fl) << " " << tname
                          << ": acc " << outcome.faulty_accuracy << ", AD "
                          << outcome.ad;
          results[a].cells[fl][ti].trials.push_back(outcome);
        }
      }
    }
  }

  for (std::size_t a = 0; a < archs.size(); ++a) {
    results[a].golden_accuracy = summarize(golden_acc[a]);
    results[a].golden_train_seconds = summarize(golden_train[a]);
    results[a].golden_infer_seconds = summarize(golden_infer[a]);
    aggregate_cells(results[a]);
  }
  return results;
}

StudyResult run_study(const StudyConfig& config) {
  const models::Arch archs[] = {config.model};
  auto results = run_multi_model_study(config, archs);
  return std::move(results.front());
}

}  // namespace tdfm::experiment
