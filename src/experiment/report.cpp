#include "experiment/report.hpp"

#include <sstream>

#include "core/table.hpp"

namespace tdfm::experiment {

namespace {

std::vector<std::string> technique_header(const StudyResult& r,
                                          const std::string& first) {
  std::vector<std::string> header{first};
  for (const auto kind : r.config.techniques) {
    header.emplace_back(mitigation::technique_name(kind));
  }
  return header;
}

}  // namespace

std::string render_ad_table(const StudyResult& r, const std::string& title) {
  AsciiTable table(technique_header(r, "faults \\ AD"));
  for (std::size_t fl = 0; fl < r.cells.size(); ++fl) {
    std::vector<std::string> row{r.config.fault_level_name(fl)};
    for (const CellResult& cell : r.cells[fl]) {
      row.push_back(percent_with_ci(cell.ad.mean, cell.ad.ci95_half_width));
    }
    table.add_row(std::move(row));
  }
  std::ostringstream os;
  os << title << "  (golden acc "
     << percent(r.golden_accuracy.mean) << ", " << r.config.trials
     << " trials; lower AD is better)\n"
     << table.render();
  return os.str();
}

std::string render_accuracy_table(const StudyResult& r, const std::string& title) {
  AsciiTable table(technique_header(r, "faults \\ acc"));
  for (std::size_t fl = 0; fl < r.cells.size(); ++fl) {
    std::vector<std::string> row{r.config.fault_level_name(fl)};
    for (const CellResult& cell : r.cells[fl]) {
      row.push_back(percent(cell.faulty_accuracy.mean, 0));
    }
    table.add_row(std::move(row));
  }
  std::ostringstream os;
  os << title << "  (plain-model accuracy " << percent(r.golden_accuracy.mean, 0)
     << ")\n"
     << table.render();
  return os.str();
}

std::string render_overhead_table(const StudyResult& r, const std::string& title) {
  // Normalise against the baseline technique at the same fault level.
  std::size_t base_idx = r.config.techniques.size();
  for (std::size_t i = 0; i < r.config.techniques.size(); ++i) {
    if (r.config.techniques[i] == mitigation::TechniqueKind::kBaseline) {
      base_idx = i;
    }
  }
  TDFM_CHECK(base_idx < r.config.techniques.size(),
             "overhead table needs the baseline technique in the study");
  AsciiTable table({"technique", "train time", "train overhead", "infer time",
                    "infer overhead", "models at inference"});
  for (std::size_t fl = 0; fl < r.cells.size(); ++fl) {
    const CellResult& base = r.cells[fl][base_idx];
    for (std::size_t ti = 0; ti < r.config.techniques.size(); ++ti) {
      const CellResult& cell = r.cells[fl][ti];
      const double train_x =
          base.train_seconds.mean > 0 ? cell.train_seconds.mean / base.train_seconds.mean
                                      : 0.0;
      const double infer_x =
          base.infer_seconds.mean > 0 ? cell.infer_seconds.mean / base.infer_seconds.mean
                                      : 0.0;
      table.add_row({std::string(mitigation::technique_name(r.config.techniques[ti])),
                     fixed(cell.train_seconds.mean, 2) + "s", fixed(train_x, 2) + "x",
                     fixed(cell.infer_seconds.mean * 1e3, 1) + "ms",
                     fixed(infer_x, 2) + "x", fixed(cell.inference_models, 0)});
    }
  }
  std::ostringstream os;
  os << title << "\n" << table.render();
  return os.str();
}

std::string render_winners(const StudyResult& r) {
  std::ostringstream os;
  for (std::size_t fl = 0; fl < r.cells.size(); ++fl) {
    std::size_t best = 0;
    // Skip the baseline when picking the most resilient *technique*.
    double best_ad = std::numeric_limits<double>::infinity();
    for (std::size_t ti = 0; ti < r.config.techniques.size(); ++ti) {
      if (r.config.techniques[ti] == mitigation::TechniqueKind::kBaseline) continue;
      if (r.cells[fl][ti].ad.mean < best_ad) {
        best_ad = r.cells[fl][ti].ad.mean;
        best = ti;
      }
    }
    os << "  most resilient at " << r.config.fault_level_name(fl) << ": "
       << mitigation::technique_name(r.config.techniques[best]) << " (AD "
       << percent(best_ad) << ")\n";
  }
  return os.str();
}

std::string render_csv(const StudyResult& r) {
  std::ostringstream os;
  os << "dataset,model,faults,technique,ad_mean,ad_ci95,acc_mean,train_s,infer_s,"
        "inference_models,golden_acc\n";
  for (std::size_t fl = 0; fl < r.cells.size(); ++fl) {
    for (std::size_t ti = 0; ti < r.config.techniques.size(); ++ti) {
      const CellResult& cell = r.cells[fl][ti];
      os << data::dataset_name(r.config.dataset.kind) << ','
         << models::arch_name(r.config.model) << ','
         << r.config.fault_level_name(fl) << ','
         << mitigation::technique_name(r.config.techniques[ti]) << ','
         << cell.ad.mean << ',' << cell.ad.ci95_half_width << ','
         << cell.faulty_accuracy.mean << ',' << cell.train_seconds.mean << ','
         << cell.infer_seconds.mean << ',' << cell.inference_models << ','
         << r.golden_accuracy.mean << '\n';
    }
  }
  return os.str();
}

}  // namespace tdfm::experiment
