// Report rendering for study results — paper-style tables on stdout.
#pragma once

#include <iosfwd>
#include <string>

#include "experiment/experiment.hpp"

namespace tdfm::experiment {

/// Renders a figure-style AD table: rows = fault levels, columns =
/// techniques, cells = "mean% ± ci%".  Mirrors one panel of Figs. 3/4.
[[nodiscard]] std::string render_ad_table(const StudyResult& result,
                                          const std::string& title);

/// Renders a Table-IV-style accuracy row set for one study (single fault
/// level, usually "none"): columns = techniques, cells = accuracy.
[[nodiscard]] std::string render_accuracy_table(const StudyResult& result,
                                                const std::string& title);

/// Renders the §IV-E overhead analysis: training and inference time of each
/// technique normalised to the baseline cell of the same fault level.
[[nodiscard]] std::string render_overhead_table(const StudyResult& result,
                                                const std::string& title);

/// One-line summary of the best (lowest mean AD) technique per fault level.
[[nodiscard]] std::string render_winners(const StudyResult& result);

/// CSV dump (one row per fault level x technique) for downstream plotting.
[[nodiscard]] std::string render_csv(const StudyResult& result);

}  // namespace tdfm::experiment
