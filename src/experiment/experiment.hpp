// Experiment harness implementing the paper's measurement pipeline (Fig. 2).
//
// A *study* fixes a dataset and a primary model, then sweeps fault levels x
// techniques over repeated trials.  Per trial:
//   1. train the golden model (no technique) on clean data;
//   2. for each fault level, inject faults into the training data;
//   3. for each technique, fit on the faulty data and measure AD against
//      the trial's golden predictions (plus accuracy and runtime overheads).
// The golden model is shared across techniques and fault levels within a
// trial, exactly as in the paper (§IV: "We first train each model with
// fault-free training data to obtain a golden model, and then train the
// same model, applying each TDFM technique, with fault injected data").
//
// For meta label correction the harness reserves the clean subset *before*
// injection (§III-B2) — fraction gamma of the training data is excluded
// from fault injection and handed to the technique.
#pragma once

#include <vector>

#include "core/statistics.hpp"
#include "faults/fault_injector.hpp"
#include "mitigation/registry.hpp"

namespace tdfm::experiment {

/// One fault level = a list of fault campaigns applied in order (single
/// entry for the paper's main sweeps; two entries for §IV-C combinations;
/// empty for no-injection baselines like Table IV).
using FaultLevel = std::vector<faults::FaultSpec>;

struct StudyConfig {
  data::SyntheticSpec dataset;
  models::Arch model = models::Arch::kResNet50;
  std::vector<mitigation::TechniqueKind> techniques = mitigation::all_techniques();
  std::vector<FaultLevel> fault_levels;
  std::size_t trials = 3;
  nn::TrainOptions train_opts;
  mitigation::Hyperparameters hyperparams;
  std::size_t model_width = 8;
  std::uint64_t seed = 42;

  [[nodiscard]] std::string fault_level_name(std::size_t index) const;
};

/// Raw per-trial measurements for one (fault level, technique) cell.
struct TrialOutcome {
  double golden_accuracy = 0.0;
  double faulty_accuracy = 0.0;
  double ad = 0.0;
  double reverse_ad = 0.0;
  double naive_drop = 0.0;
  double train_seconds = 0.0;
  double infer_seconds = 0.0;
  double inference_models = 1.0;
};

/// Aggregated cell: one (fault level, technique) pair over all trials.
struct CellResult {
  SampleStats ad;
  SampleStats faulty_accuracy;
  SampleStats train_seconds;
  SampleStats infer_seconds;
  double inference_models = 1.0;
  std::vector<TrialOutcome> trials;

  [[nodiscard]] std::vector<double> ad_samples() const;
};

struct StudyResult {
  StudyConfig config;
  SampleStats golden_accuracy;
  SampleStats golden_train_seconds;
  SampleStats golden_infer_seconds;
  /// cells[fault_level][technique_index] in config order.
  std::vector<std::vector<CellResult>> cells;

  [[nodiscard]] const CellResult& cell(std::size_t fault_level,
                                       mitigation::TechniqueKind kind) const;
};

/// Runs the full study; deterministic in config.seed.
[[nodiscard]] StudyResult run_study(const StudyConfig& config);

/// Runs one study per architecture in `archs`, sharing work that does not
/// depend on the panel model: the dataset, the per-trial fault injections,
/// and — crucially — the ensemble technique, whose member set is fixed
/// (§IV) and therefore identical across panels.  Ensemble classifiers are
/// trained once per (trial, fault level) and measured against each panel
/// model's golden predictions, cutting Fig. 3-style multi-panel runs by
/// nearly one ensemble training per extra panel.  Results are identical in
/// distribution to calling run_study per model.
[[nodiscard]] std::vector<StudyResult> run_multi_model_study(
    const StudyConfig& proto, std::span<const models::Arch> archs);

/// Convenience: the paper's standard fault sweep for one type —
/// {10%, 30%, 50%} of the given kind.
[[nodiscard]] std::vector<FaultLevel> standard_sweep(faults::FaultType type);

}  // namespace tdfm::experiment
