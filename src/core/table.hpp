// ASCII table rendering for bench output.
//
// Every bench binary regenerates one of the paper's tables or figures; the
// output format mirrors the paper's layout (rows = configurations, columns =
// techniques) so paper-vs-measured comparison in EXPERIMENTS.md is direct.
#pragma once

#include <string>
#include <vector>

namespace tdfm {

/// Column-aligned ASCII table with an optional title and a markdown mode.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header) : header_(std::move(header)) {}

  /// Appends a row; it must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with box-drawing separators.
  [[nodiscard]] std::string render() const;

  /// Renders as a GitHub-markdown table (used in EXPERIMENTS.md).
  [[nodiscard]] std::string render_markdown() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  [[nodiscard]] std::vector<std::size_t> column_widths() const;

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats v as a fixed-point string with `digits` decimals.
[[nodiscard]] std::string fixed(double v, int digits = 2);

/// Formats a fraction (0..1) as a percentage string, e.g. 0.905 -> "90.5%".
[[nodiscard]] std::string percent(double fraction, int digits = 1);

/// Formats "mean ± ci" as a percentage pair, e.g. "23.4% ± 2.1%".
[[nodiscard]] std::string percent_with_ci(double mean, double ci_half_width,
                                          int digits = 1);

}  // namespace tdfm
