#include "core/cli.hpp"

#include <cstdint>
#include <iostream>
#include <sstream>

#include "core/error.hpp"
#include "core/logging.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace tdfm {

void CliParser::add_flag(std::string name, std::string default_value, std::string help) {
  TDFM_CHECK(!name.empty() && name[0] != '-', "register flag names without dashes");
  Flag f{default_value, default_value, std::move(help)};
  flags_[std::move(name)] = std::move(f);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage(argv[0]);
      return false;
    }
    if (!arg.starts_with("--")) {
      throw ConfigError("unexpected positional argument: " + std::string(arg));
    }
    arg.remove_prefix(2);
    std::string name;
    std::string value;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
      if (i + 1 >= argc) {
        throw ConfigError("flag --" + name + " expects a value");
      }
      value = argv[++i];
    }
    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      throw ConfigError("unknown flag --" + name + "\n" + usage(argv[0]));
    }
    it->second.value = std::move(value);
  }
  return true;
}

std::string CliParser::get_string(const std::string& name) const {
  const auto it = flags_.find(name);
  TDFM_CHECK(it != flags_.end(), "flag was never registered");
  return it->second.value;
}

int CliParser::get_int(const std::string& name) const {
  const std::string v = get_string(name);
  try {
    std::size_t pos = 0;
    const int r = std::stoi(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return r;
  } catch (const std::exception&) {
    throw ConfigError("flag --" + name + " expects an integer, got '" + v + "'");
  }
}

std::uint64_t CliParser::get_u64(const std::string& name) const {
  const std::string v = get_string(name);
  try {
    std::size_t pos = 0;
    const std::uint64_t r = std::stoull(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return r;
  } catch (const std::exception&) {
    throw ConfigError("flag --" + name + " expects an unsigned integer, got '" + v + "'");
  }
}

double CliParser::get_double(const std::string& name) const {
  const std::string v = get_string(name);
  try {
    std::size_t pos = 0;
    const double r = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return r;
  } catch (const std::exception&) {
    throw ConfigError("flag --" + name + " expects a number, got '" + v + "'");
  }
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = get_string(name);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw ConfigError("flag --" + name + " expects a boolean, got '" + v + "'");
}

std::string CliParser::usage(std::string_view program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " <value>   " << flag.help
       << " (default: " << flag.default_value << ")\n";
  }
  return os.str();
}

void add_common_bench_flags(CliParser& cli, int default_trials, int default_epochs,
                            double default_scale) {
  cli.add_flag("trials", std::to_string(default_trials),
               "repetitions per configuration (paper used 20)");
  cli.add_flag("epochs", std::to_string(default_epochs), "training epochs per trial");
  cli.add_flag("scale", std::to_string(default_scale), "dataset-size multiplier");
  cli.add_flag("seed", "42", "master random seed");
  cli.add_flag("log", "warn", "log level: debug|info|warn|error|off");
  cli.add_flag("threads", "0",
               "worker threads for training hot paths (0 = hardware "
               "concurrency, 1 = serial); results are bit-identical for "
               "every value");
  add_obs_flags(cli);
}

void add_loadgen_flags(CliParser& cli, double default_duration, double default_rate,
                       double default_warmup) {
  cli.add_flag("duration", std::to_string(default_duration),
               "seconds of measured load (> 0)");
  cli.add_flag("rate", std::to_string(default_rate),
               "open-loop arrival rate in requests/second (0 = unthrottled, "
               "saturating load)");
  cli.add_flag("warmup", std::to_string(default_warmup),
               "seconds of unmeasured lead-in load (>= 0)");
}

LoadgenOptions parse_loadgen_flags(const CliParser& cli) {
  LoadgenOptions opts;
  opts.duration_s = cli.get_double("duration");
  opts.rate_rps = cli.get_double("rate");
  opts.warmup_s = cli.get_double("warmup");
  if (opts.duration_s <= 0.0) {
    throw ConfigError("--duration must be positive, got " +
                      std::to_string(opts.duration_s));
  }
  if (opts.rate_rps < 0.0) {
    throw ConfigError("--rate must be >= 0 (0 = unthrottled), got " +
                      std::to_string(opts.rate_rps));
  }
  if (opts.warmup_s < 0.0) {
    throw ConfigError("--warmup must be >= 0, got " + std::to_string(opts.warmup_s));
  }
  return opts;
}

void add_obs_flags(CliParser& cli) {
  cli.add_flag("metrics", "",
               "JSONL telemetry output: per-epoch/per-cell records plus a "
               "final metrics-registry scrape (empty = off)");
  cli.add_flag("trace", "",
               "Chrome trace_event JSON output, viewable in Perfetto "
               "(empty = off)");
  cli.add_flag("log-timestamps", "false",
               "prefix log lines with ISO-8601 UTC time and thread id");
}

void apply_obs_flags(const CliParser& cli) {
  set_log_timestamps(cli.get_bool("log-timestamps"));
  const std::string metrics = cli.get_string("metrics");
  if (!metrics.empty()) obs::set_metrics_output(metrics);
  const std::string trace = cli.get_string("trace");
  if (!trace.empty()) {
    obs::set_trace_output(trace);
    obs::set_trace_enabled(true);
  }
}

}  // namespace tdfm
