// Summary statistics for experiment reporting.
//
// The paper reports every AD/accuracy value as a mean over repeated trials
// with a 95% confidence interval (error bars in Figs. 3 and 4), and §IV-C
// argues "statistical similarity" between combined and single fault types.
// This header provides the small amount of statistics needed for both:
// sample summaries, t-based confidence intervals, and Welch's t-test.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tdfm {

/// Five-number-style summary of a sample of measurements.
struct SampleStats {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;   ///< sample standard deviation (n-1 denominator)
  double stderr_ = 0.0;  ///< standard error of the mean
  double ci95_half_width = 0.0;  ///< half-width of the 95% CI (t-based)
  double min = 0.0;
  double max = 0.0;

  [[nodiscard]] double ci_lo() const { return mean - ci95_half_width; }
  [[nodiscard]] double ci_hi() const { return mean + ci95_half_width; }
};

/// Computes mean/stddev/95% CI for a sample.  n = 0 yields all-zero stats;
/// n = 1 yields a zero-width interval.
[[nodiscard]] SampleStats summarize(std::span<const double> xs);

/// Two-sided critical value t*(0.975, dof) of Student's t distribution,
/// tabulated for small dof and asymptotic (1.96) for large dof.
[[nodiscard]] double t_critical_975(std::size_t dof);

/// Result of Welch's unequal-variance t-test.
struct WelchResult {
  double t = 0.0;       ///< test statistic
  double dof = 0.0;     ///< Welch–Satterthwaite degrees of freedom
  bool significant_at_05 = false;  ///< |t| exceeds t*(0.975, dof)
};

/// Welch's t-test for difference of means between two samples.  Used by the
/// combined-fault experiment (§IV-C) to decide whether a combination behaves
/// "statistically similar" to its dominant single fault type.
[[nodiscard]] WelchResult welch_t_test(std::span<const double> a,
                                       std::span<const double> b);

/// Arithmetic mean; returns 0 for an empty span.
[[nodiscard]] double mean_of(std::span<const double> xs);

/// Median; the average of the two middle elements for even sizes, 0 for an
/// empty span.  The input is not modified.
[[nodiscard]] double median_of(std::span<const double> xs);

/// Mean rank of each column when every row is ranked ascending (rank 1 =
/// smallest value; ties receive the average of the ranks they span).  Rows
/// must all have the same length.  This is the aggregation behind the
/// paper's Observations 1-3: each row is one study context (model x dataset
/// x fault level) scored per technique, and a technique's mean rank says how
/// consistently it beats the others across contexts.  Returns one mean rank
/// per column; empty input yields an empty vector.
[[nodiscard]] std::vector<double> rank_techniques(
    std::span<const std::vector<double>> rows);

}  // namespace tdfm
