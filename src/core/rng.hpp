// Deterministic random number generation.
//
// Every stochastic component in tdfm (weight init, shuffling, fault
// injection, synthetic data generation, dropout) draws from an explicitly
// seeded Rng so that whole experiments are reproducible bit-for-bit from a
// single master seed.  We implement xoshiro256** (Blackman & Vigna) seeded
// via splitmix64 — fast, high quality, and independent of the standard
// library's unspecified distributions (std::normal_distribution etc. differ
// across standard libraries, which would break cross-platform determinism).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/error.hpp"

namespace tdfm {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator with explicit seeding and forkable substreams.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedu) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  /// Creates an independent generator derived from this one's stream plus a
  /// caller-supplied salt.  Forking gives every component (e.g. each model
  /// of an ensemble, each trial of an experiment) its own stream without the
  /// components perturbing one another's sequences.
  [[nodiscard]] Rng fork(std::uint64_t salt) {
    std::uint64_t mix = next() ^ (0x9e3779b97f4a7c15ULL * (salt + 1));
    return Rng(mix);
  }

  [[nodiscard]] std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with <algorithm>).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  [[nodiscard]] float uniform(float lo, float hi) {
    return lo + static_cast<float>(uniform()) * (hi - lo);
  }

  /// Uniform integer in [0, n).  n must be positive.
  [[nodiscard]] std::size_t index(std::size_t n) {
    TDFM_CHECK(n > 0, "index() needs a non-empty range");
    // Lemire's multiply-shift rejection method for unbiased bounded ints.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0ULL - n) % n;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::size_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] int range(int lo, int hi) {
    TDFM_CHECK(lo <= hi, "range() bounds out of order");
    return lo + static_cast<int>(index(static_cast<std::size_t>(hi - lo) + 1));
  }

  /// Standard normal via Box–Muller (cached second variate).
  [[nodiscard]] float normal();

  /// Normal with given mean and standard deviation.
  [[nodiscard]] float normal(float mean, float stddev) {
    return mean + stddev * normal();
  }

  /// Bernoulli draw with success probability p.
  [[nodiscard]] bool bernoulli(double p) { return uniform() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// Samples k distinct indices from [0, n) (Fisher–Yates prefix).
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                                    std::size_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_cached_normal_ = false;
  float cached_normal_ = 0.0F;
};

}  // namespace tdfm
