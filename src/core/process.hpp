// Local process spawning for the multi-process campaign driver.
//
// `study_runner --spawn N` forks one worker per shard; all the driver needs
// is "run this argv, wait for it, tell me how it ended".  posix_spawnp does
// exactly that without the fork-in-a-threaded-process footguns, and the
// children inherit stdout/stderr so worker logs interleave visibly.
#pragma once

#include <sys/types.h>

#include <string>
#include <vector>

namespace tdfm::core {

/// How a spawned process ended.  `exit_code` is valid when `signalled` is
/// false; `term_signal` when it is true.
struct ProcessExit {
  bool signalled = false;
  int exit_code = 0;
  int term_signal = 0;

  [[nodiscard]] bool ok() const { return !signalled && exit_code == 0; }
  /// "exit 3" / "signal 9" — for error messages.
  [[nodiscard]] std::string describe() const;
};

/// Spawns `argv` (argv[0] is the program, resolved via PATH) with inherited
/// stdio and environment.  Throws InvariantError when the spawn itself
/// fails; a program that starts and then fails is reported by wait_process.
[[nodiscard]] pid_t spawn_process(const std::vector<std::string>& argv);

/// Blocks until `pid` exits and returns how it ended.
[[nodiscard]] ProcessExit wait_process(pid_t pid);

/// Non-blocking wait: true (and fills *out) when `pid` has exited, false
/// while it is still running.  Lets the --spawn driver poll children while
/// rendering live progress between checks.
[[nodiscard]] bool try_wait_process(pid_t pid, ProcessExit* out);

}  // namespace tdfm::core
