// Minimal leveled logger.
//
// Experiments run for minutes; progress lines let the operator see which
// configuration is training.  The logger writes to stderr so that bench
// stdout stays machine-parseable (tables/CSV only).
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace tdfm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Parses "debug"/"info"/"warn"/"error"/"off"; throws ConfigError otherwise.
[[nodiscard]] LogLevel parse_log_level(std::string_view name);

/// When enabled, every log line carries an ISO-8601 UTC timestamp and a
/// small per-thread id, e.g. "[2026-08-06T12:34:56.789Z T002] [INFO ] ...".
/// Lines stay atomic (composed fully before the single stream write).
/// Exposed on benches/examples as --log-timestamps.
void set_log_timestamps(bool on);
[[nodiscard]] bool log_timestamps();

/// A fixed prefix prepended to every log line (after the timestamp, before
/// the level tag), e.g. "[shard 1/3] " so interleaved multi-process stderr
/// stays attributable.  Empty clears it.
void set_log_prefix(std::string prefix);
[[nodiscard]] std::string log_prefix();

namespace detail {
void log_line(LogLevel level, std::string_view msg);
}

/// Stream-style log statement: LOG(kInfo) << "epoch " << e;
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { detail::log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace tdfm

#define TDFM_LOG(level) ::tdfm::LogStream(::tdfm::LogLevel::level)
