#include "core/file_lock.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/error.hpp"

namespace tdfm::core {

namespace {

std::string errno_text() { return std::strerror(errno); }

}  // namespace

FileLock::FileLock(int fd) : fd_(fd) {
  int rc;
  do {
    rc = ::flock(fd_, LOCK_EX);
  } while (rc != 0 && errno == EINTR);
  TDFM_CHECK(rc == 0, "flock(LOCK_EX) failed: " + errno_text());
}

FileLock::~FileLock() {
  // Best effort: the lock also dies with the fd / the process.
  (void)::flock(fd_, LOCK_UN);
}

AppendFile::AppendFile(const std::string& path) : path_(path) {
  do {
    fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  } while (fd_ < 0 && errno == EINTR);
  TDFM_CHECK(fd_ >= 0,
             "cannot open append file " + path + ": " + errno_text());
}

AppendFile::~AppendFile() {
  if (fd_ >= 0) (void)::close(fd_);
}

void AppendFile::append(std::string_view payload) {
  const FileLock lock(fd_);
  std::size_t written = 0;
  while (written < payload.size()) {
    const ssize_t n =
        ::write(fd_, payload.data() + written, payload.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw InvariantError("append to " + path_ + " failed: " + errno_text());
    }
    written += static_cast<std::size_t>(n);
  }
  // kill -9 survives on the page cache without this; power loss does not.
  TDFM_CHECK(::fdatasync(fd_) == 0,
             "fdatasync of " + path_ + " failed: " + errno_text());
}

}  // namespace tdfm::core
