// Wall-clock stopwatch used by the runtime-overhead analysis (§IV-E).
#pragma once

#include <chrono>

namespace tdfm {

/// Monotonic stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace tdfm
