// POSIX advisory file locking + crash-safe append primitives.
//
// The study journal (and any future multi-process log) needs two guarantees
// that C++ iostreams cannot give:
//
//   1. A record appended by one process never interleaves with a record
//      appended by another process writing the same file.
//   2. A record is on its way to disk (write(2) + fdatasync(2)) before the
//      caller treats the work it describes as durable.
//
// AppendFile provides both: one O_APPEND file descriptor held open for the
// file's lifetime, and `append()` takes an exclusive flock(2) for exactly
// the duration of one write+sync.  flock locks are per open file
// description, so two AppendFile instances — in one process or in two —
// serialise against each other, while readers (which take no lock) see a
// prefix of whole records plus at most one torn tail after a kill -9.
#pragma once

#include <string>
#include <string_view>

namespace tdfm::core {

/// RAII exclusive advisory lock on an already-open file descriptor.
/// Blocks in the constructor until the lock is granted; releases on
/// destruction.  Throws InvariantError if flock(2) itself fails.
class FileLock {
 public:
  explicit FileLock(int fd);
  ~FileLock();

  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

 private:
  int fd_;
};

/// An append-only file handle for multi-writer logs.  The file is created
/// (0644) on first open if missing; every `append()` writes the payload in
/// one locked write+fdatasync, so concurrent writers produce an interleaving
/// of whole payloads, never byte soup.
class AppendFile {
 public:
  /// Opens (creating if necessary) `path` for appending.  Throws
  /// InvariantError when the file cannot be opened or created.
  explicit AppendFile(const std::string& path);
  ~AppendFile();

  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Appends `payload` under an exclusive flock and syncs it to disk.
  /// The caller supplies any record terminator (e.g. '\n') as part of the
  /// payload.  Throws InvariantError on a short or failed write.
  void append(std::string_view payload);

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

}  // namespace tdfm::core
