// Error handling primitives for the tdfm library.
//
// Following the C++ Core Guidelines (E.2, E.3) we use exceptions for error
// reporting and reserve assertions/checks for programming errors.  All
// exceptions thrown by tdfm derive from tdfm::Error so callers can install a
// single catch site.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace tdfm {

/// Root of the tdfm exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A precondition or invariant inside the library was violated.
/// Indicates a bug in the caller (bad arguments) or in tdfm itself.
class InvariantError : public Error {
 public:
  using Error::Error;
};

/// Tensor/layer shapes do not line up.
class ShapeError : public Error {
 public:
  using Error::Error;
};

/// A configuration value (experiment config, CLI flag, hyperparameter) is
/// out of its documented domain.
class ConfigError : public Error {
 public:
  using Error::Error;
};

namespace detail {

[[noreturn]] inline void throw_check_failure(std::string_view kind,
                                             std::string_view expr,
                                             std::string_view msg,
                                             const std::source_location& loc) {
  std::ostringstream os;
  os << kind << " failure at " << loc.file_name() << ':' << loc.line() << " in "
     << loc.function_name() << ": (" << expr << ")";
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

}  // namespace detail

/// Checks a precondition; throws InvariantError when violated.
/// Active in all build types — experiment correctness depends on these.
inline void check(bool cond, std::string_view expr, std::string_view msg = "",
                  const std::source_location loc = std::source_location::current()) {
  if (!cond) detail::throw_check_failure("check", expr, msg, loc);
}

}  // namespace tdfm

/// Convenience macro capturing the failing expression text.
#define TDFM_CHECK(cond, ...) \
  ::tdfm::check(static_cast<bool>(cond), #cond __VA_OPT__(, ) __VA_ARGS__)
