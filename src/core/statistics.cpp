#include "core/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/error.hpp"

namespace tdfm {

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double median_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t mid = sorted.size() / 2;
  if (sorted.size() % 2 == 1) return sorted[mid];
  return 0.5 * (sorted[mid - 1] + sorted[mid]);
}

std::vector<double> rank_techniques(std::span<const std::vector<double>> rows) {
  if (rows.empty()) return {};
  const std::size_t cols = rows.front().size();
  std::vector<double> rank_sums(cols, 0.0);
  for (const std::vector<double>& row : rows) {
    TDFM_CHECK(row.size() == cols, "rank_techniques rows must be equal length");
    // Sort column indices by value; ties share the average of their ranks.
    std::vector<std::size_t> order(cols);
    for (std::size_t i = 0; i < cols; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&row](std::size_t a, std::size_t b) {
      if (row[a] != row[b]) return row[a] < row[b];
      return a < b;
    });
    std::size_t i = 0;
    while (i < cols) {
      std::size_t j = i;
      while (j + 1 < cols && row[order[j + 1]] == row[order[i]]) ++j;
      const double shared_rank = 0.5 * static_cast<double>(i + j) + 1.0;
      for (std::size_t k = i; k <= j; ++k) rank_sums[order[k]] += shared_rank;
      i = j + 1;
    }
  }
  for (double& r : rank_sums) r /= static_cast<double>(rows.size());
  return rank_sums;
}

double t_critical_975(std::size_t dof) {
  // Two-sided 95% critical values of Student's t.  Exact to 3 decimals for
  // dof <= 30; the asymptotic normal value is used beyond that (error < 2%).
  static constexpr double table[] = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228,  2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
      2.086,  2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
      2.042};
  if (dof == 0) return 0.0;
  if (dof <= 30) return table[dof];
  if (dof <= 40) return 2.021;
  if (dof <= 60) return 2.000;
  if (dof <= 120) return 1.980;
  return 1.960;
}

SampleStats summarize(std::span<const double> xs) {
  SampleStats s;
  s.n = xs.size();
  if (s.n == 0) return s;
  s.mean = mean_of(xs);
  auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  s.min = *mn;
  s.max = *mx;
  if (s.n == 1) return s;
  double ss = 0.0;
  for (double x : xs) ss += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
  s.stderr_ = s.stddev / std::sqrt(static_cast<double>(s.n));
  s.ci95_half_width = t_critical_975(s.n - 1) * s.stderr_;
  return s;
}

WelchResult welch_t_test(std::span<const double> a, std::span<const double> b) {
  WelchResult r;
  const SampleStats sa = summarize(a);
  const SampleStats sb = summarize(b);
  if (sa.n < 2 || sb.n < 2) return r;
  const double va = sa.stddev * sa.stddev / static_cast<double>(sa.n);
  const double vb = sb.stddev * sb.stddev / static_cast<double>(sb.n);
  const double denom = std::sqrt(va + vb);
  if (denom == 0.0) {
    // Identical constant samples: no evidence of a difference.
    r.t = (sa.mean == sb.mean) ? 0.0 : std::numeric_limits<double>::infinity();
    r.dof = static_cast<double>(sa.n + sb.n - 2);
    r.significant_at_05 = (sa.mean != sb.mean);
    return r;
  }
  r.t = (sa.mean - sb.mean) / denom;
  // Welch–Satterthwaite degrees of freedom.
  const double num = (va + vb) * (va + vb);
  const double den = va * va / static_cast<double>(sa.n - 1) +
                     vb * vb / static_cast<double>(sb.n - 1);
  r.dof = (den > 0.0) ? num / den : static_cast<double>(sa.n + sb.n - 2);
  const auto dof_floor = static_cast<std::size_t>(std::max(1.0, std::floor(r.dof)));
  r.significant_at_05 = std::fabs(r.t) > t_critical_975(dof_floor);
  return r;
}

}  // namespace tdfm
