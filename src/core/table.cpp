#include "core/table.hpp"

#include <algorithm>
#include <sstream>

#include "core/error.hpp"

namespace tdfm {

void AsciiTable::add_row(std::vector<std::string> row) {
  TDFM_CHECK(row.size() == header_.size(), "row arity must match header");
  rows_.push_back(std::move(row));
}

std::vector<std::size_t> AsciiTable::column_widths() const {
  std::vector<std::size_t> w(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      w[c] = std::max(w[c], row[c].size());
    }
  }
  return w;
}

namespace {
void render_cells(std::ostringstream& os, const std::vector<std::string>& cells,
                  const std::vector<std::size_t>& widths, char sep) {
  for (std::size_t c = 0; c < cells.size(); ++c) {
    os << sep << ' ' << cells[c]
       << std::string(widths[c] - cells[c].size() + 1, ' ');
  }
  os << sep << '\n';
}
}  // namespace

std::string AsciiTable::render() const {
  const auto widths = column_widths();
  std::ostringstream os;
  std::string rule = "+";
  for (auto w : widths) rule += std::string(w + 2, '-') + '+';
  rule += '\n';
  os << rule;
  render_cells(os, header_, widths, '|');
  os << rule;
  for (const auto& row : rows_) render_cells(os, row, widths, '|');
  os << rule;
  return os.str();
}

std::string AsciiTable::render_markdown() const {
  const auto widths = column_widths();
  std::ostringstream os;
  render_cells(os, header_, widths, '|');
  os << '|';
  for (auto w : widths) os << std::string(w + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) render_cells(os, row, widths, '|');
  return os.str();
}

std::string fixed(double v, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << v;
  return os.str();
}

std::string percent(double fraction, int digits) {
  return fixed(fraction * 100.0, digits) + "%";
}

std::string percent_with_ci(double mean, double ci_half_width, int digits) {
  return fixed(mean * 100.0, digits) + "% ± " + fixed(ci_half_width * 100.0, digits) + "%";
}

}  // namespace tdfm
