#include "core/process.hpp"

#include <spawn.h>
#include <sys/wait.h>

#include <cerrno>
#include <cstring>

#include "core/error.hpp"

extern char** environ;

namespace tdfm::core {

std::string ProcessExit::describe() const {
  return signalled ? "signal " + std::to_string(term_signal)
                   : "exit " + std::to_string(exit_code);
}

pid_t spawn_process(const std::vector<std::string>& argv) {
  TDFM_CHECK(!argv.empty(), "spawn_process needs a program name");
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  pid_t pid = -1;
  const int rc = ::posix_spawnp(&pid, cargv[0], nullptr, nullptr, cargv.data(),
                                environ);
  if (rc != 0) {
    throw InvariantError("posix_spawnp(" + argv[0] +
                         ") failed: " + std::strerror(rc));
  }
  return pid;
}

ProcessExit wait_process(pid_t pid) {
  int status = 0;
  pid_t rc;
  do {
    rc = ::waitpid(pid, &status, 0);
  } while (rc < 0 && errno == EINTR);
  TDFM_CHECK(rc == pid, "waitpid failed: " + std::string(std::strerror(errno)));
  ProcessExit out;
  if (WIFSIGNALED(status)) {
    out.signalled = true;
    out.term_signal = WTERMSIG(status);
  } else {
    out.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
  return out;
}

bool try_wait_process(pid_t pid, ProcessExit* out) {
  TDFM_CHECK(out != nullptr, "try_wait_process needs an output slot");
  int status = 0;
  pid_t rc;
  do {
    rc = ::waitpid(pid, &status, WNOHANG);
  } while (rc < 0 && errno == EINTR);
  if (rc == 0) return false;  // still running
  TDFM_CHECK(rc == pid, "waitpid failed: " + std::string(std::strerror(errno)));
  if (WIFSIGNALED(status)) {
    out->signalled = true;
    out->term_signal = WTERMSIG(status);
  } else {
    out->signalled = false;
    out->exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
  return true;
}

}  // namespace tdfm::core
