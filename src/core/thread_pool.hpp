// Deterministic work-sharing thread pool.
//
// The training hot paths (GEMM row blocks, per-image im2col convolution,
// ensemble member training) are embarrassingly parallel, but the repo's
// bit-for-bit determinism guarantee (core/rng.hpp) forbids any construct
// whose *result* depends on thread scheduling.  The pool therefore only
// offers `for_range`: the caller partitions an index range into fixed
// chunks, every chunk writes to disjoint outputs (or to per-chunk scratch
// that the caller reduces in fixed order afterwards), and chunk *execution
// order* is the only thing the scheduler may vary.  Under that contract the
// computed bits are identical for any thread count, including 1.
//
// Nesting: a `for_range` issued from inside a pool worker runs inline on
// that worker (no new tasks), so layer-level parallelism composes with
// model-level parallelism (ensemble members) without deadlock and without
// changing results.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace tdfm::core {

class ThreadPool {
 public:
  /// Body invoked once per chunk with a half-open index subrange [lo, hi).
  using RangeFn = std::function<void(std::size_t lo, std::size_t hi)>;

  /// Creates a pool that runs work on `threads` threads total (the calling
  /// thread participates, so `threads - 1` workers are spawned).  `threads`
  /// is clamped to at least 1; a 1-thread pool executes everything inline.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads this pool uses (including the caller), >= 1.
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Runs `fn` over [begin, end) split into chunks of `grain` indices.
  /// Blocks until every chunk has finished; rethrows the first exception a
  /// chunk threw.  Chunks may run in any order and on any thread, so `fn`
  /// must confine its writes to chunk-local state — results are then
  /// bit-identical for every pool size.  Called from a pool worker (nested
  /// parallelism) or on a 1-thread pool, the chunks run inline in ascending
  /// order on the calling thread.
  void for_range(std::size_t begin, std::size_t end, std::size_t grain,
                 const RangeFn& fn);

  /// True on threads owned by any ThreadPool (used to run nested parallel
  /// regions inline).
  [[nodiscard]] static bool in_worker();

  /// RAII marker: while alive, every for_range issued from this thread runs
  /// inline (chunks in ascending order on the calling thread — the same
  /// arithmetic, hence the same bits).  for_range is single-job and must not
  /// be entered from several external threads at once, so long-lived service
  /// threads that each run their own independent work (the tdfm::serve
  /// inference workers) declare themselves inline instead of contending for
  /// the shared scheduler.  Nests safely with pool workers and other scopes.
  class InlineScope {
   public:
    InlineScope();
    ~InlineScope();
    InlineScope(const InlineScope&) = delete;
    InlineScope& operator=(const InlineScope&) = delete;

   private:
    bool previous_;
  };

  /// Process-wide pool shared by the numeric kernels.  Created on first use
  /// with `default_threads()` threads.
  [[nodiscard]] static ThreadPool& global();

  /// Replaces the global pool with an `n`-thread pool (0 = hardware
  /// concurrency).  No-op if the size already matches or when called from a
  /// pool worker; must not race in-flight work on the global pool, so call
  /// it from the main thread between workloads (CLI startup, bench sweeps).
  static void set_global_threads(std::size_t n);

  /// Thread count of the global pool without forcing its creation early.
  [[nodiscard]] static std::size_t global_threads();

  /// Hardware concurrency with a floor of 1 (the CLI `--threads 0` default).
  [[nodiscard]] static std::size_t default_threads();

 private:
  struct Job {
    const RangeFn* body = nullptr;
    /// Span name of the caller when tracing is on; chunks record
    /// "<parent>/chunk" spans on whichever thread runs them (obs/trace.hpp).
    std::string trace_parent;
    std::size_t begin = 0;
    std::size_t grain = 1;
    std::size_t end = 0;
    std::size_t num_chunks = 0;
    std::atomic<std::size_t> next_chunk{0};
    std::atomic<std::size_t> done_chunks{0};
    std::mutex error_mu;
    std::exception_ptr error;
  };

  void worker_loop();
  void execute_chunks(Job& job);

  std::size_t size_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> job_;       ///< currently running job (guarded by mu_)
  std::uint64_t job_seq_ = 0;      ///< bumped per job so workers wake exactly once
  bool stop_ = false;
};

/// Convenience wrapper over the global pool — the call every hot loop makes.
inline void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                         const ThreadPool::RangeFn& fn) {
  ThreadPool::global().for_range(begin, end, grain, fn);
}

}  // namespace tdfm::core
