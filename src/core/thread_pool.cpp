#include "core/thread_pool.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "obs/trace.hpp"

namespace tdfm::core {

namespace {

// Set for the lifetime of every thread a pool owns; nested for_range calls
// consult it to run inline instead of re-entering the scheduler.
thread_local bool t_in_pool_worker = false;

std::mutex g_global_mu;
std::unique_ptr<ThreadPool> g_global_pool;  // NOLINT: intentional singleton

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) : size_(std::max<std::size_t>(threads, 1)) {
  workers_.reserve(size_ - 1);
  for (std::size_t i = 0; i + 1 < size_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::in_worker() { return t_in_pool_worker; }

ThreadPool::InlineScope::InlineScope() : previous_(t_in_pool_worker) {
  t_in_pool_worker = true;
}

ThreadPool::InlineScope::~InlineScope() { t_in_pool_worker = previous_; }

std::size_t ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool& ThreadPool::global() {
  const std::lock_guard<std::mutex> lk(g_global_mu);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(default_threads());
  }
  return *g_global_pool;
}

void ThreadPool::set_global_threads(std::size_t n) {
  if (in_worker()) return;  // a running job must not tear down its own pool
  // Catches "--threads -1" style input that wrapped through size_t.
  TDFM_CHECK(n <= 4096, "thread count out of range (use 0 for hardware concurrency)");
  if (n == 0) n = default_threads();
  const std::lock_guard<std::mutex> lk(g_global_mu);
  if (g_global_pool && g_global_pool->size() == n) return;
  g_global_pool.reset();  // joins old workers before the replacement spawns
  g_global_pool = std::make_unique<ThreadPool>(n);
}

std::size_t ThreadPool::global_threads() {
  const std::lock_guard<std::mutex> lk(g_global_mu);
  return g_global_pool ? g_global_pool->size() : default_threads();
}

void ThreadPool::worker_loop() {
  t_in_pool_worker = true;
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [&] { return stop_ || (job_ != nullptr && job_seq_ != seen); });
    if (stop_) return;
    seen = job_seq_;
    // Keep the job alive past the caller's return via shared ownership: a
    // worker that loses the race for the last chunk may still touch the
    // job's atomics after the caller has been released.
    const std::shared_ptr<Job> job = job_;
    lk.unlock();
    execute_chunks(*job);
    lk.lock();
  }
}

void ThreadPool::execute_chunks(Job& job) {
  for (;;) {
    const std::size_t c = job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.num_chunks) return;
    const std::size_t lo = job.begin + c * job.grain;
    const std::size_t hi = std::min(job.end, lo + job.grain);
    try {
      if (job.trace_parent.empty()) {
        (*job.body)(lo, hi);
      } else {
        // Attribute the chunk to the span that issued the parallel region;
        // the event lands on the executing thread's trace lane.
        obs::Span span(job.trace_parent + "/chunk");
        (*job.body)(lo, hi);
      }
    } catch (...) {
      const std::lock_guard<std::mutex> elk(job.error_mu);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.done_chunks.fetch_add(1, std::memory_order_acq_rel) + 1 == job.num_chunks) {
      const std::lock_guard<std::mutex> lk(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::for_range(std::size_t begin, std::size_t end, std::size_t grain,
                           const RangeFn& fn) {
  if (end <= begin) return;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t n = end - begin;
  const std::size_t num_chunks = (n + grain - 1) / grain;
  // Inline paths: serial pool, a single chunk, or a nested call from a pool
  // worker.  Chunks run in ascending order — the same arithmetic as the
  // scheduled path, hence identical bits.
  if (size_ == 1 || num_chunks == 1 || t_in_pool_worker) {
    for (std::size_t lo = begin; lo < end; lo += grain) {
      fn(lo, std::min(end, lo + grain));
    }
    return;
  }

  auto job = std::make_shared<Job>();
  job->body = &fn;
  if (obs::trace_enabled()) {
    job->trace_parent = obs::current_span_name();
    if (job->trace_parent.empty()) job->trace_parent = "for_range";
  }
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->num_chunks = num_chunks;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    TDFM_CHECK(job_ == nullptr,
               "ThreadPool::for_range is not reentrant from multiple external threads");
    job_ = job;
    ++job_seq_;
  }
  work_cv_.notify_all();
  // The calling thread is one of the pool's threads: mark it as such while
  // it drains chunks so nested parallel regions inside `fn` run inline.
  t_in_pool_worker = true;
  execute_chunks(*job);
  t_in_pool_worker = false;
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] {
      return job->done_chunks.load(std::memory_order_acquire) == job->num_chunks;
    });
    job_ = nullptr;
  }
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace tdfm::core
