// Variable-length integer and bit-packing primitives for binary formats.
//
// The results store (src/store) encodes its columns with these: LEB128
// varints for lengths/ids/deltas, zig-zag mapping so small negative deltas
// stay short, fixed64 for raw double bits, and a byte-per-8-bools bitmap
// for flag columns.  Decoders take untrusted file bytes, so every read is
// bounds-checked and throws ConfigError (not UB) on truncation — the same
// fail-loudly contract as obs::FlatJsonParser.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/error.hpp"

namespace tdfm::core {

/// Appends `v` as an unsigned LEB128 varint (1-10 bytes).
inline void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out += static_cast<char>((v & 0x7F) | 0x80);
    v >>= 7;
  }
  out += static_cast<char>(v);
}

/// Reads a varint at `pos`, advancing it.  Throws ConfigError on a
/// truncated or over-long (> 10 byte) encoding.
inline std::uint64_t get_varint(std::string_view s, std::size_t& pos) {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (pos >= s.size()) throw ConfigError("varint: truncated input");
    const auto byte = static_cast<std::uint8_t>(s[pos++]);
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  throw ConfigError("varint: encoding longer than 10 bytes");
}

/// Maps signed to unsigned so that small-magnitude values (either sign)
/// varint-encode short: 0,-1,1,-2,... -> 0,1,2,3,...
inline std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

/// Appends `v` as 8 little-endian bytes (raw fp64 bit patterns).
inline void put_fixed64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out += static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

inline std::uint64_t get_fixed64(std::string_view s, std::size_t& pos) {
  if (pos + 8 > s.size()) throw ConfigError("fixed64: truncated input");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(s[pos + i]))
         << (8 * i);
  }
  pos += 8;
  return v;
}

/// Packs bools 8-per-byte, LSB first.  The reader must know the count.
inline void pack_bits(const std::vector<bool>& bits, std::string& out) {
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) acc |= static_cast<std::uint8_t>(1u << (i % 8));
    if (i % 8 == 7) {
      out += static_cast<char>(acc);
      acc = 0;
    }
  }
  if (bits.size() % 8 != 0) out += static_cast<char>(acc);
}

/// Unpacks `count` bools from `pos`, advancing past ceil(count/8) bytes.
inline std::vector<bool> unpack_bits(std::string_view s, std::size_t count,
                                     std::size_t& pos) {
  const std::size_t bytes = (count + 7) / 8;
  if (pos + bytes > s.size()) throw ConfigError("bitmap: truncated input");
  std::vector<bool> bits(count);
  for (std::size_t i = 0; i < count; ++i) {
    bits[i] = (static_cast<std::uint8_t>(s[pos + i / 8]) >> (i % 8)) & 1u;
  }
  pos += bytes;
  return bits;
}

/// FNV-1a 64-bit over arbitrary bytes: the store's segment checksum.  Not
/// cryptographic — it detects torn writes and bit rot, nothing adversarial.
inline std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace tdfm::core
