#include "core/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <iostream>
#include <mutex>

#include "core/error.hpp"

namespace tdfm {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::atomic<bool> g_timestamps{false};

/// Worker-identity prefix (set_log_prefix).  Guarded by a mutex: set once at
/// startup, read per line — contention-free in practice.
std::mutex g_prefix_mu;
std::string g_prefix;  // NOLINT(runtime/string) — process lifetime

/// Dense per-thread label assigned on first log from that thread.
std::uint32_t thread_label() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1);
  return id;
}

/// "2026-08-06T12:34:56.789Z T002 " — UTC wall clock plus thread id.
std::string timestamp_prefix() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ T%03u",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms), thread_label());
  return buf;
}

constexpr std::string_view level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void set_log_timestamps(bool on) { g_timestamps.store(on); }
bool log_timestamps() { return g_timestamps.load(); }

void set_log_prefix(std::string prefix) {
  const std::lock_guard<std::mutex> lk(g_prefix_mu);
  g_prefix = std::move(prefix);
}

std::string log_prefix() {
  const std::lock_guard<std::mutex> lk(g_prefix_mu);
  return g_prefix;
}

LogLevel parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  throw ConfigError("unknown log level: " + std::string(name));
}

namespace detail {
void log_line(LogLevel level, std::string_view msg) {
  if (level < g_level.load() || msg.empty()) return;
  // Compose the full line first so concurrent log statements (parallel
  // ensemble members) cannot interleave mid-line.
  std::string line;
  line.reserve(msg.size() + 42);
  if (g_timestamps.load()) {
    line += '[';
    line += timestamp_prefix();
    line += "] ";
  }
  {
    const std::lock_guard<std::mutex> lk(g_prefix_mu);
    line += g_prefix;
  }
  line += '[';
  line += level_tag(level);
  line += "] ";
  line += msg;
  line += '\n';
  std::cerr << line;
}
}  // namespace detail

}  // namespace tdfm
