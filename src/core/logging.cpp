#include "core/logging.hpp"

#include <atomic>
#include <iostream>

#include "core/error.hpp"

namespace tdfm {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

constexpr std::string_view level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

LogLevel parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  throw ConfigError("unknown log level: " + std::string(name));
}

namespace detail {
void log_line(LogLevel level, std::string_view msg) {
  if (level < g_level.load() || msg.empty()) return;
  // Compose the full line first so concurrent log statements (parallel
  // ensemble members) cannot interleave mid-line.
  std::string line;
  line.reserve(msg.size() + 10);
  line += '[';
  line += level_tag(level);
  line += "] ";
  line += msg;
  line += '\n';
  std::cerr << line;
}
}  // namespace detail

}  // namespace tdfm
