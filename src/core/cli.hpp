// Tiny command-line flag parser shared by the bench and example binaries.
//
// Every bench accepts the same scaling knobs (--trials, --epochs, --scale,
// --seed, --log) so a user can dial any experiment from a seconds-long smoke
// run to a paper-faithful overnight run without recompiling.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tdfm {

/// Parses "--key value" and "--key=value" style flags.  Unknown flags throw
/// ConfigError listing the registered flags, so typos fail loudly.
class CliParser {
 public:
  /// Registers a flag with a default value and a help string.
  void add_flag(std::string name, std::string default_value, std::string help);

  /// Parses argv.  "--help" prints usage and returns false (caller exits 0).
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] int get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& name) const;

  [[nodiscard]] std::string usage(std::string_view program) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
  };
  std::map<std::string, Flag> flags_;
};

/// Registers the scaling flags shared by all bench binaries:
///   --trials (repetitions per configuration; paper used 20)
///   --epochs (training epochs per trial)
///   --scale  (dataset-size multiplier, 1.0 = bench default)
///   --seed   (master seed)
///   --log    (debug|info|warn|error|off)
///   --threads (worker threads; 0 = hardware concurrency, 1 = serial)
void add_common_bench_flags(CliParser& cli, int default_trials, int default_epochs,
                            double default_scale = 1.0);

/// Parsed load-generation settings (the bench_serving open-loop driver).
struct LoadgenOptions {
  double duration_s = 0.0;  ///< measured interval length
  double rate_rps = 0.0;    ///< request arrival rate; 0 = unthrottled (saturate)
  double warmup_s = 0.0;    ///< discarded lead-in before measurement
};

/// Registers the load-generation flags:
///   --duration (seconds of measured load)
///   --rate     (open-loop arrival rate in requests/second; 0 = as fast as
///               possible, i.e. saturation)
///   --warmup   (seconds of unmeasured lead-in load)
void add_loadgen_flags(CliParser& cli, double default_duration, double default_rate,
                       double default_warmup);

/// Reads and validates the load-generation flags (call after parse).  Throws
/// ConfigError on non-positive duration, negative rate, or negative warmup.
[[nodiscard]] LoadgenOptions parse_loadgen_flags(const CliParser& cli);

/// Registers the observability flags every bench/example accepts:
///   --metrics <file>   stream training telemetry + metric scrape as JSONL
///   --trace <file>     record Chrome trace_event JSON (open in Perfetto)
///   --log-timestamps   prefix log lines with ISO-8601 time + thread id
/// add_common_bench_flags registers these automatically; examples with
/// bespoke flag sets call this directly.
void add_obs_flags(CliParser& cli);

/// Applies the parsed observability flags (call after CliParser::parse).
void apply_obs_flags(const CliParser& cli);

}  // namespace tdfm
