#include "core/rng.hpp"

#include <cmath>
#include <numbers>

namespace tdfm {

float Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller transform; u1 is nudged away from zero to keep log() finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = static_cast<float>(r * std::sin(theta));
  have_cached_normal_ = true;
  return static_cast<float>(r * std::cos(theta));
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  TDFM_CHECK(k <= n, "cannot sample more items than the population holds");
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher–Yates: after k swaps the prefix is the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + index(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace tdfm
