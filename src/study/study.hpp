// Umbrella header for the tdfm campaign engine:
//   - spec.hpp           grid declaration, content-hashed cell identity,
//                        role-scoped RNG seeds
//   - journal.hpp        crash-safe JSONL journal (resume source of truth)
//   - dataset_cache.hpp  compute-once dataset memoisation (OnceMap)
//   - runner.hpp         parallel, resumable cell scheduler
//   - analyzer.hpp       journal -> paper-style aggregates and reports
//   - presets.hpp        named grids for the paper's figures and tables
//
// Quick tour (see DESIGN.md "Campaign engine"):
//
//   study::StudySpec spec = study::preset_spec("fig3-mislabelling");
//   study::RunOptions run;
//   run.jobs = 4;
//   run.journal_path = "fig3.jsonl";
//   run.resume = true;                       // continue a killed sweep
//   const auto result = study::run_campaign(spec, run);
//   const auto summary = study::summarize_campaign(result.records);
//   std::cout << study::render_ascii(summary);
//
// Every cell's RNG seeds derive from the cell's content, so the records —
// and therefore the reports — are bit-identical at any job count, any
// execution order, and any resume point.
#pragma once

#include "study/analyzer.hpp"   // IWYU pragma: export
#include "study/dataset_cache.hpp"  // IWYU pragma: export
#include "study/journal.hpp"    // IWYU pragma: export
#include "study/presets.hpp"    // IWYU pragma: export
#include "study/runner.hpp"     // IWYU pragma: export
#include "study/spec.hpp"       // IWYU pragma: export
