// Named campaign presets mirroring the paper's figures and tables.
//
// A preset is a fully-specified StudySpec at bench scale (the same defaults
// the bench binaries shipped with: 1 trial, 10 epochs, 0.4 dataset scale).
// The fig3/fig4/table4 benches are thin wrappers over these presets — the
// bench flags (--trials, --epochs, --scale, --models, ...) override preset
// fields *after* lookup, so "what grid does Fig. 3 run" lives in exactly one
// place.  `paper-full` is the overnight configuration (every architecture,
// every fault sweep, 20 trials, full-size datasets); `smoke` is the CI
// preset, sized to finish in seconds even under ThreadSanitizer.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "study/spec.hpp"

namespace tdfm::study {

struct Preset {
  std::string name;
  std::string description;
  StudySpec spec;
};

/// All preset names, in presentation order (stable: tests pin this list).
[[nodiscard]] std::vector<std::string> preset_names();

/// All presets, same order as preset_names().
[[nodiscard]] const std::vector<Preset>& all_presets();

/// Looks a preset up by name; throws ConfigError listing the valid names.
[[nodiscard]] const Preset& preset(std::string_view name);

/// Convenience: a copy of the preset's spec, ready for field overrides.
[[nodiscard]] StudySpec preset_spec(std::string_view name);

}  // namespace tdfm::study
