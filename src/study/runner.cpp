#include "study/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/error.hpp"
#include "core/logging.hpp"
#include "core/rng.hpp"
#include "core/thread_pool.hpp"
#include "data/dataset.hpp"
#include "faults/fault_injector.hpp"
#include "metrics/metrics.hpp"
#include "mitigation/baseline.hpp"
#include "obs/exporter.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "study/dataset_cache.hpp"

namespace tdfm::study {

namespace {

/// Golden model of one (dataset, model, trial): predictions on the test set
/// plus its accuracy.  Shared by every (level, technique) cell of that panel.
struct GoldenResult {
  std::vector<int> preds;
  double accuracy = 0.0;
  double train_seconds = 0.0;
  double infer_seconds = 0.0;
};

/// A technique fit shared across panels (ensembles: the member set ignores
/// the panel model, so one fit serves every model axis entry).
struct SharedFit {
  std::vector<int> preds;
  std::vector<int> q_preds;  ///< int8 predictions (measure_quantized only)
  double train_seconds = 0.0;
  double infer_seconds = 0.0;
  double inference_models = 1.0;
};

/// Per-campaign compute-once caches.  Keys are content hashes (spec.hpp), so
/// a hit returns exactly the bytes a lone recomputation would produce.
struct CampaignCaches {
  OnceMap<std::shared_ptr<const GoldenResult>> golden;
  OnceMap<std::shared_ptr<const SharedFit>> shared_fit;
};

void emit_cell_telemetry(const CellRecord& r, double accuracy, double ad) {
  if (!obs::telemetry_enabled()) return;
  obs::CellRecord rec;
  rec.model = r.model;
  rec.fault_level = r.fault_level;
  rec.technique = r.technique;
  rec.trial = r.trial;
  rec.train_seconds = r.train_seconds;
  rec.infer_seconds = r.infer_seconds;
  rec.accuracy = accuracy;
  rec.ad = ad;
  obs::emit_cell(rec);
}

std::shared_ptr<const GoldenResult> golden_for(
    const StudySpec& spec, const Cell& cell, const data::TrainTestPair& data,
    const models::ModelConfig& model_config, const nn::TrainOptions& topts,
    CampaignCaches& caches, bool* computed) {
  return caches.golden.get(
      golden_key(spec, cell),
      [&] {
        mitigation::BaselineTechnique technique;
        mitigation::FitContext ctx;
        ctx.train = &data.train;
        ctx.primary_arch = spec.models[cell.model];
        ctx.model_config = model_config;
        ctx.train_opts = topts;
        Rng rng(golden_seed(spec, cell));
        ctx.rng = &rng;
        obs::Span fit_span("study:golden:fit");
        const auto classifier = technique.fit(ctx);
        auto out = std::make_shared<GoldenResult>();
        out->train_seconds = fit_span.stop();
        obs::Span infer_span("study:golden:predict");
        out->preds = classifier->predict(data.test.images);
        out->infer_seconds = infer_span.stop();
        out->accuracy = metrics::accuracy(out->preds, data.test.labels);
        if (obs::telemetry_enabled()) {
          obs::CellRecord rec;
          rec.model = models::arch_name(spec.models[cell.model]);
          rec.fault_level = "none";
          rec.technique = "golden";
          rec.trial = cell.trial + 1;
          rec.train_seconds = out->train_seconds;
          rec.infer_seconds = out->infer_seconds;
          rec.accuracy = out->accuracy;
          obs::emit_cell(rec);
        }
        return out;
      },
      computed);
}

/// Trains the technique of one cell and predicts on the test set.  For
/// shareable fits (ensembles) the work is memoised per shared_fit_key.
SharedFit fit_and_predict(const StudySpec& spec, const Cell& cell,
                          const data::TrainTestPair& data,
                          const models::ModelConfig& model_config,
                          const nn::TrainOptions& topts, CampaignCaches& caches,
                          bool* shared, bool* shared_computed) {
  const auto kind = spec.techniques[cell.technique];
  const std::string tname = mitigation::technique_name(kind);
  const FaultLevel& level = spec.fault_levels[cell.level];

  const auto run_fit = [&]() -> SharedFit {
    auto technique = mitigation::make_technique(kind, spec.hyperparams);
    mitigation::FitContext ctx;
    ctx.primary_arch = spec.models[cell.model];
    ctx.model_config = model_config;
    ctx.train_opts = topts;

    // The fit's inputs must outlive technique->fit().
    data::Dataset faulty;
    data::Dataset lc_clean;
    if (technique->wants_clean_subset()) {
      // Label correction's clean subset is reserved *before* injection
      // (§III-B2); the remaining data receives the same fault campaign.
      Rng split_rng(lc_split_seed(spec, cell));
      auto [head, rest] =
          data::random_split(data.train, spec.hyperparams.lc_gamma, split_rng);
      lc_clean = std::move(head);
      Rng inject_rng(lc_inject_seed(spec, cell));
      faulty = faults::inject(rest, level, inject_rng);
      ctx.clean_subset = &lc_clean;
    } else {
      Rng inject_rng(inject_seed(spec, cell));
      faulty = faults::inject(data.train, level, inject_rng);
    }
    ctx.train = &faulty;

    Rng fit_rng(fit_seed(spec, cell));
    ctx.rng = &fit_rng;
    SharedFit out;
    obs::Span fit_span("study:fit:" + tname);
    const auto classifier = technique->fit(ctx);
    out.train_seconds = fit_span.stop();
    obs::Span predict_span("study:predict:" + tname);
    out.preds = classifier->predict(data.test.images);
    out.infer_seconds = predict_span.stop();
    out.inference_models = classifier->inference_model_count();
    if (spec.measure_quantized) {
      // fp32 predictions are done, so destroying the fp32 weights in place
      // is safe; a classifier with nothing to quantize reports fp32 == int8.
      if (classifier->quantize_for_inference()) {
        out.q_preds = classifier->predict(data.test.images);
      } else {
        out.q_preds = out.preds;
      }
    }
    return out;
  };

  const std::uint64_t share_key = shared_fit_key(spec, cell);
  if (share_key == 0) {
    *shared = false;
    *shared_computed = true;
    return run_fit();
  }
  *shared = true;
  auto cached = caches.shared_fit.get(
      share_key, [&] { return std::make_shared<const SharedFit>(run_fit()); },
      shared_computed);
  return *cached;
}

CellRecord run_cell(const StudySpec& spec, const Cell& cell,
                    const std::string& id, const nn::TrainOptions& topts,
                    CampaignCaches& caches, CacheCounters& golden_counters,
                    CacheCounters& shared_counters, std::mutex& counter_mu) {
  static obs::Counter golden_hits =
      obs::Registry::global().counter("study.golden_cache.hits");
  static obs::Counter golden_misses =
      obs::Registry::global().counter("study.golden_cache.misses");
  static obs::Counter shared_hits =
      obs::Registry::global().counter("study.shared_fit_cache.hits");
  static obs::Counter shared_misses =
      obs::Registry::global().counter("study.shared_fit_cache.misses");

  const data::DatasetKind kind = spec.datasets[cell.dataset];
  const data::SyntheticSpec dspec = dataset_spec_for(spec, kind);
  const auto data = DatasetCache::global().get(dspec);
  const models::ModelConfig model_config =
      models::ModelConfig::for_dataset(dspec, spec.model_width);

  bool golden_computed = false;
  const auto golden = golden_for(spec, cell, *data, model_config, topts, caches,
                                 &golden_computed);

  bool shared = false;
  bool fit_computed = false;
  const SharedFit fit = fit_and_predict(spec, cell, *data, model_config, topts,
                                        caches, &shared, &fit_computed);

  {
    const std::lock_guard<std::mutex> lock(counter_mu);
    if (golden_computed) ++golden_counters.misses; else ++golden_counters.hits;
    if (shared) {
      if (fit_computed) ++shared_counters.misses; else ++shared_counters.hits;
    }
  }
  if (golden_computed) golden_misses.add(); else golden_hits.add();
  if (shared) {
    if (fit_computed) shared_misses.add(); else shared_hits.add();
  }

  CellRecord rec;
  rec.cell = id;
  rec.dataset = data::dataset_name(kind);
  rec.model = models::arch_name(spec.models[cell.model]);
  rec.fault_level = spec.fault_level_name(cell.level);
  rec.technique = mitigation::technique_name(spec.techniques[cell.technique]);
  rec.trial = cell.trial + 1;
  rec.golden_accuracy = golden->accuracy;
  rec.faulty_accuracy = metrics::accuracy(fit.preds, data->test.labels);
  rec.ad = metrics::accuracy_delta(golden->preds, fit.preds, data->test.labels);
  rec.reverse_ad =
      metrics::reverse_accuracy_delta(golden->preds, fit.preds, data->test.labels);
  rec.naive_drop =
      metrics::naive_accuracy_drop(golden->preds, fit.preds, data->test.labels);
  rec.train_seconds = fit.train_seconds;
  rec.infer_seconds = fit.infer_seconds;
  rec.inference_models = fit.inference_models;
  rec.shared_fit = shared;
  if (spec.measure_quantized) {
    rec.quantized = true;
    rec.quantized_accuracy = metrics::accuracy(fit.q_preds, data->test.labels);
    rec.quantized_ad =
        metrics::accuracy_delta(golden->preds, fit.q_preds, data->test.labels);
    rec.quantized_vs_fp32_ad =
        metrics::accuracy_delta(fit.preds, fit.q_preds, data->test.labels);
  }

  emit_cell_telemetry(rec, rec.faulty_accuracy, rec.ad);
  TDFM_LOG(kInfo) << "study cell " << rec.cell << " " << rec.dataset << "/"
                  << rec.model << "/" << rec.fault_level << "/" << rec.technique
                  << " trial " << rec.trial << ": acc " << rec.faulty_accuracy
                  << ", AD " << rec.ad;
  return rec;
}

/// Coordination-free work stealing.  An idle shard asks claim_next() for a
/// grid cell that (a) belongs to another shard, (b) no sibling journal
/// records yet, and (c) this process has not already claimed.  Sibling
/// journals are rescanned on every claim — a few KB of file I/O against
/// seconds of training per cell — so the window for duplicated work is one
/// in-flight cell per sibling, and duplicates are benign anyway (results
/// are bit-identical; merge_journals deduplicates).
class StealController {
 public:
  StealController(std::vector<std::size_t> candidates,
                  std::vector<std::string> siblings,
                  const std::vector<std::string>& ids)
      : candidates_(std::move(candidates)),
        siblings_(std::move(siblings)),
        ids_(ids) {}

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::size_t claim_next() {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const std::string& path : siblings_) {
      try {
        for (const CellRecord& r : Journal::load(path)) taken_.insert(r.cell);
      } catch (const Error&) {
        // Unreadable sibling: scanning is advisory; worst case we recompute
        // a cell the sibling already has, and the merge keeps one copy.
      }
    }
    while (cursor_ < candidates_.size()) {
      const std::size_t i = candidates_[cursor_++];
      if (taken_.insert(ids_[i]).second) return i;
    }
    return npos;
  }

 private:
  std::mutex mu_;
  std::vector<std::size_t> candidates_;
  std::vector<std::string> siblings_;
  const std::vector<std::string>& ids_;
  std::unordered_set<std::string> taken_;
  std::size_t cursor_ = 0;
};

}  // namespace

CampaignResult run_campaign(const StudySpec& spec, const RunOptions& options) {
  spec.validate();
  const std::size_t jobs =
      options.jobs == 0 ? core::ThreadPool::default_threads() : options.jobs;
  TDFM_CHECK(!options.resume || !options.journal_path.empty(),
             "resume requires a journal path");
  TDFM_CHECK(options.shard_count >= 1, "shard_count must be >= 1");
  TDFM_CHECK(options.shard_index < options.shard_count,
             "shard_index must be in [0, shard_count)");
  TDFM_CHECK(options.shard_count == 1 || !options.journal_path.empty(),
             "a sharded run needs a journal — its journal is its output");
  TDFM_CHECK(!options.work_steal || options.shard_count > 1,
             "work stealing only makes sense for a sharded run");

  obs::Span campaign_span("study:campaign:" + spec.name);
  const std::vector<Cell> cells = expand_cells(spec);
  std::vector<std::string> ids(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) ids[i] = cell_id(spec, cells[i]);

  // Resume: adopt journaled records whose cell ids belong to this grid.
  // Records from a different grid (edited spec) are dropped — their content
  // hash cannot match — so the journal self-heals on the next append.
  Journal journal(options.journal_path);
  std::unordered_map<std::string, CellRecord> done;
  if (options.resume) {
    for (auto& r : Journal::load(options.journal_path)) {
      done.emplace(r.cell, std::move(r));
    }
  }
  std::vector<std::optional<CellRecord>> slots(cells.size());
  std::vector<CellRecord> adopted;
  std::vector<std::size_t> pending;  ///< this shard's unjournaled cells
  std::vector<std::size_t> foreign;  ///< other shards' unjournaled cells
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto it = done.find(ids[i]);
    if (it != done.end()) {
      slots[i] = it->second;
      adopted.push_back(it->second);
    } else if (shard_of(ids[i], options.shard_count) == options.shard_index) {
      pending.push_back(i);
    } else {
      foreign.push_back(i);
    }
  }
  const std::size_t adopted_count = adopted.size();
  journal.adopt(std::move(adopted));

  if (options.shuffle_seed != 0) {
    Rng shuffle_rng(options.shuffle_seed);
    shuffle_rng.shuffle(pending);
  }

  // Stealing starts each shard at a different point of the foreign list so
  // simultaneously-idle shards collide on their first claims as little as a
  // coordination-free scheme allows.
  std::optional<StealController> steal;
  const std::size_t stealable = foreign.size();
  if (options.work_steal && !foreign.empty()) {
    const std::size_t offset =
        options.shard_index * foreign.size() / options.shard_count;
    std::rotate(foreign.begin(), foreign.begin() + static_cast<std::ptrdiff_t>(offset),
                foreign.end());
    steal.emplace(std::move(foreign), options.sibling_journals, ids);
  }

  CampaignResult result;
  result.spec = spec;
  result.skipped = adopted_count;
  const DatasetCache::Stats ds_before = DatasetCache::global().stats();

  CampaignCaches caches;
  std::mutex counter_mu;
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> executed{0};
  std::atomic<std::uint64_t> begun{0};
  std::atomic<std::size_t> stolen{0};
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr first_error;

  static obs::Counter cells_executed =
      obs::Registry::global().counter("study.cells.executed");
  static obs::Counter cells_stolen =
      obs::Registry::global().counter("study.cells.stolen");

  // Observability plane: periodic per-process snapshots of metrics plus the
  // progress numbers below.  fill_meta runs on the exporter thread, so it
  // only touches atomics and immutable campaign state.
  obs::SnapshotExporter exporter;
  if (!options.obs_dir.empty()) {
    const auto obs_t0 = std::chrono::steady_clock::now();
    obs::ExporterOptions eopts;
    eopts.dir = options.obs_dir;
    eopts.shard_index = options.shard_index;
    eopts.shard_count = options.shard_count;
    eopts.label = options.shard_count > 1
                      ? "shard " + std::to_string(options.shard_index) + "/" +
                            std::to_string(options.shard_count)
                      : spec.name;
    eopts.interval_ms = options.obs_interval_ms;
    eopts.fill_meta = [&cells, &executed, &stolen, adopted_count,
                       obs_t0](obs::SnapshotMeta& meta) {
      meta.grid_cells = cells.size();
      meta.cells_executed = executed.load(std::memory_order_relaxed);
      meta.cells_stolen = stolen.load(std::memory_order_relaxed);
      meta.cells_done = adopted_count + meta.cells_executed;
      meta.elapsed_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        obs_t0)
              .count();
    };
    exporter.start(std::move(eopts));
  }

  // With jobs > 1 each worker trains inline (ThreadPool::InlineScope) and
  // per-fit thread requests are disabled so no cell resizes the global pool
  // under another cell's feet.  With jobs == 1 the caller's options stand.
  const auto worker = [&](bool inline_scope) {
    std::optional<core::ThreadPool::InlineScope> scope;
    if (inline_scope) scope.emplace();
    const auto run_one = [&](std::size_t i) {
      if (obs::flight::enabled()) {
        obs::flight::record(obs::flight::EventKind::kCellBegin, ids[i]);
      }
      if (options.abort_after_cells != 0 &&
          begun.fetch_add(1, std::memory_order_relaxed) + 1 ==
              options.abort_after_cells) {
        std::abort();  // crash drill: die with this cell still in flight
      }
      const data::DatasetKind kind = spec.datasets[cells[i].dataset];
      nn::TrainOptions topts = train_options_for(spec, kind);
      if (inline_scope) topts.threads = 0;
      CellRecord rec = run_cell(spec, cells[i], ids[i], topts, caches,
                                result.golden_cache, result.shared_fit_cache,
                                counter_mu);
      journal.append(rec);
      executed.fetch_add(1, std::memory_order_relaxed);
      cells_executed.add();
      if (obs::flight::enabled()) {
        obs::flight::record(obs::flight::EventKind::kCellEnd, ids[i]);
      }
      if (options.on_cell) options.on_cell(rec);
      slots[i] = std::move(rec);
    };
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t slot = cursor.fetch_add(1, std::memory_order_relaxed);
      if (slot >= pending.size()) break;
      try {
        run_one(pending[slot]);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
    // Own shard drained: claim unjournaled cells from sibling shards.
    while (steal && !failed.load(std::memory_order_relaxed)) {
      const std::size_t i = steal->claim_next();
      if (i == StealController::npos) break;
      if (obs::flight::enabled()) {
        obs::flight::record(obs::flight::EventKind::kStealClaim, ids[i]);
      }
      try {
        run_one(i);
        stolen.fetch_add(1, std::memory_order_relaxed);
        cells_stolen.add();
        TDFM_LOG(kInfo) << "shard " << options.shard_index << " stole cell "
                        << ids[i];
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  const std::size_t work_bound =
      pending.size() + (steal ? stealable : std::size_t{0});
  if (jobs <= 1 || work_bound <= 1) {
    worker(/*inline_scope=*/false);
  } else {
    std::vector<std::thread> threads;
    const std::size_t n = std::min(jobs, work_bound);
    threads.reserve(n);
    for (std::size_t t = 0; t < n; ++t) {
      threads.emplace_back(worker, /*inline_scope=*/true);
    }
    for (auto& t : threads) t.join();
  }
  exporter.stop();  // final snapshot carries the end-state totals
  if (first_error) std::rethrow_exception(first_error);

  result.executed = executed.load();
  result.stolen = stolen.load();
  result.records.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!slots[i].has_value()) {
      // Only another shard's cells may legitimately be missing.
      TDFM_CHECK(options.shard_count > 1,
                 "campaign finished with an unrun cell");
      continue;
    }
    result.records.push_back(std::move(*slots[i]));
  }
  const DatasetCache::Stats ds_after = DatasetCache::global().stats();
  result.dataset_cache.hits = ds_after.hits - ds_before.hits;
  result.dataset_cache.misses = ds_after.misses - ds_before.misses;
  result.elapsed_seconds = campaign_span.stop();
  return result;
}

}  // namespace tdfm::study
