#include "study/analyzer.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <sstream>
#include <utility>

#include "core/table.hpp"
#include "obs/json.hpp"

namespace tdfm::study {

namespace {

/// Appends `value` if absent, preserving first-seen order.
void note_axis(std::vector<std::string>& axis, const std::string& value) {
  if (std::find(axis.begin(), axis.end(), value) == axis.end()) {
    axis.push_back(value);
  }
}

std::size_t index_of(const std::vector<std::string>& axis,
                     const std::string& value) {
  return static_cast<std::size_t>(
      std::find(axis.begin(), axis.end(), value) - axis.begin());
}

GroupStats fold_group(const std::vector<const CellRecord*>& records) {
  GroupStats g;
  const CellRecord& first = *records.front();
  g.dataset = first.dataset;
  g.model = first.model;
  g.fault_level = first.fault_level;
  g.technique = first.technique;
  g.trials = records.size();
  std::vector<double> ad, rad, drop, acc, gold, train, infer;
  for (const CellRecord* r : records) {
    ad.push_back(r->ad);
    rad.push_back(r->reverse_ad);
    drop.push_back(r->naive_drop);
    acc.push_back(r->faulty_accuracy);
    gold.push_back(r->golden_accuracy);
    train.push_back(r->train_seconds);
    infer.push_back(r->infer_seconds);
  }
  g.ad = summarize(ad);
  g.reverse_ad = summarize(rad);
  g.naive_drop = summarize(drop);
  g.faulty_accuracy = summarize(acc);
  g.golden_accuracy = summarize(gold);
  g.train_seconds = summarize(train);
  g.infer_seconds = summarize(infer);
  g.inference_models = first.inference_models;
  if (first.quantized) {
    g.quantized = true;
    std::vector<double> qacc, qad, qfp;
    for (const CellRecord* r : records) {
      qacc.push_back(r->quantized_accuracy);
      qad.push_back(r->quantized_ad);
      qfp.push_back(r->quantized_vs_fp32_ad);
    }
    g.quantized_accuracy = summarize(qacc);
    g.quantized_ad = summarize(qad);
    g.quantized_vs_fp32_ad = summarize(qfp);
  }
  return g;
}

}  // namespace

CampaignSummary summarize_campaign(std::span<const CellRecord> records) {
  CampaignSummary s;
  s.total_records = records.size();
  for (const CellRecord& r : records) {
    note_axis(s.datasets, r.dataset);
    note_axis(s.models, r.model);
    note_axis(s.fault_levels, r.fault_level);
    note_axis(s.techniques, r.technique);
  }

  // Group in nested-axis order so the output order is axis-driven, not
  // record-order-driven.
  std::map<std::array<std::size_t, 4>, std::vector<const CellRecord*>> groups;
  for (const CellRecord& r : records) {
    groups[{index_of(s.datasets, r.dataset), index_of(s.models, r.model),
            index_of(s.fault_levels, r.fault_level),
            index_of(s.techniques, r.technique)}]
        .push_back(&r);
  }
  s.groups.reserve(groups.size());
  for (const auto& [key, members] : groups) s.groups.push_back(fold_group(members));

  // Technique roll-up: contexts are (dataset, model, fault level) rows; a
  // row enters the ranking only when it scored every technique, so ranks
  // stay comparable (Table IV's "-" cells simply drop their contexts).
  std::map<std::array<std::size_t, 3>, std::vector<double>> context_rows;
  for (const GroupStats& g : s.groups) {
    const std::array<std::size_t, 3> ctx = {index_of(s.datasets, g.dataset),
                                            index_of(s.models, g.model),
                                            index_of(s.fault_levels, g.fault_level)};
    auto& row = context_rows[ctx];
    row.resize(s.techniques.size(), 0.0);
    row[index_of(s.techniques, g.technique)] = g.ad.mean;
  }
  std::map<std::array<std::size_t, 3>, std::size_t> context_counts;
  for (const GroupStats& g : s.groups) {
    ++context_counts[{index_of(s.datasets, g.dataset),
                      index_of(s.models, g.model),
                      index_of(s.fault_levels, g.fault_level)}];
  }
  std::vector<std::vector<double>> complete_rows;
  for (const auto& [ctx, row] : context_rows) {
    if (context_counts[ctx] == s.techniques.size()) complete_rows.push_back(row);
  }
  const std::vector<double> ranks = rank_techniques(complete_rows);

  std::vector<std::vector<double>> per_technique_ads(s.techniques.size());
  for (const CellRecord& r : records) {
    per_technique_ads[index_of(s.techniques, r.technique)].push_back(r.ad);
  }
  for (std::size_t t = 0; t < s.techniques.size(); ++t) {
    TechniqueSummary ts;
    ts.technique = s.techniques[t];
    ts.mean_ad = mean_of(per_technique_ads[t]);
    ts.median_ad = median_of(per_technique_ads[t]);
    ts.mean_rank = ranks.empty() ? 0.0 : ranks[t];
    ts.contexts = complete_rows.size();
    s.technique_summaries.push_back(std::move(ts));
  }
  std::stable_sort(s.technique_summaries.begin(), s.technique_summaries.end(),
                   [](const TechniqueSummary& a, const TechniqueSummary& b) {
                     return a.mean_rank < b.mean_rank;
                   });
  return s;
}

namespace {

/// Shared table assembly for the ascii and markdown renderers; `markdown`
/// only switches the AsciiTable output mode.
std::string render_tables(const CampaignSummary& s, const ReportOptions& opts,
                          bool markdown) {
  std::ostringstream os;
  const auto emit = [&](const AsciiTable& t) {
    os << (markdown ? t.render_markdown() : t.render()) << "\n";
  };

  // One AD panel per (dataset, model) — rows = fault levels, columns =
  // techniques, cells = "mean% ± ci%" (Figs. 3/4 layout).
  for (const std::string& dataset : s.datasets) {
    for (const std::string& model : s.models) {
      std::vector<std::string> header = {"fault level"};
      header.insert(header.end(), s.techniques.begin(), s.techniques.end());
      AsciiTable table(header);
      double golden = 0.0;
      bool any = false;
      for (const std::string& level : s.fault_levels) {
        std::vector<std::string> row = {level};
        bool row_any = false;
        for (const std::string& technique : s.techniques) {
          const auto it = std::find_if(
              s.groups.begin(), s.groups.end(), [&](const GroupStats& g) {
                return g.dataset == dataset && g.model == model &&
                       g.fault_level == level && g.technique == technique;
              });
          if (it == s.groups.end()) {
            row.push_back("-");
          } else {
            row.push_back(percent_with_ci(it->ad.mean, it->ad.ci95_half_width));
            golden = it->golden_accuracy.mean;
            row_any = true;
          }
        }
        if (row_any) {
          table.add_row(std::move(row));
          any = true;
        }
      }
      if (!any) continue;
      os << "## AD: " << dataset << " / " << model
         << "  (golden accuracy " << percent(golden) << ")\n";
      emit(table);
    }
  }

  // Cross-context technique roll-up (Observations 1-3).
  {
    AsciiTable table({"technique", "mean rank", "mean AD", "median AD",
                      "contexts"});
    for (const TechniqueSummary& t : s.technique_summaries) {
      table.add_row({t.technique, fixed(t.mean_rank, 2), percent(t.mean_ad),
                     percent(t.median_ad), std::to_string(t.contexts)});
    }
    os << "## Technique mean ranks (lower is better)\n";
    emit(table);
  }

  // int8-vs-fp32 panel (quant-ad preset): fp32 AD next to int8 AD (both vs
  // the fp32 golden) plus the direct int8-vs-fp32 prediction delta, so the
  // quantization cost is readable per mitigation technique.
  const bool any_quantized = std::any_of(
      s.groups.begin(), s.groups.end(),
      [](const GroupStats& g) { return g.quantized; });
  if (any_quantized) {
    AsciiTable table({"dataset", "model", "fault level", "technique",
                      "fp32 AD", "int8 AD", "int8 acc", "int8 vs fp32 AD"});
    for (const GroupStats& g : s.groups) {
      if (!g.quantized) continue;
      table.add_row(
          {g.dataset, g.model, g.fault_level, g.technique,
           percent_with_ci(g.ad.mean, g.ad.ci95_half_width),
           percent_with_ci(g.quantized_ad.mean, g.quantized_ad.ci95_half_width),
           percent(g.quantized_accuracy.mean),
           percent(g.quantized_vs_fp32_ad.mean)});
    }
    os << "## Quantization: int8 vs fp32\n";
    emit(table);
  }

  if (opts.include_timings) {
    AsciiTable table({"dataset", "model", "fault level", "technique",
                      "train s", "infer ms", "models"});
    for (const GroupStats& g : s.groups) {
      table.add_row({g.dataset, g.model, g.fault_level, g.technique,
                     fixed(g.train_seconds.mean, 2),
                     fixed(g.infer_seconds.mean * 1e3, 1),
                     fixed(g.inference_models, 0)});
    }
    os << "## Overhead (wall-clock; varies run to run)\n";
    emit(table);
  }
  return os.str();
}

}  // namespace

std::string render_ascii(const CampaignSummary& summary,
                         const ReportOptions& options) {
  return render_tables(summary, options, /*markdown=*/false);
}

std::string render_markdown(const CampaignSummary& summary,
                            const ReportOptions& options) {
  return render_tables(summary, options, /*markdown=*/true);
}

std::string render_csv(const CampaignSummary& summary,
                       const ReportOptions& options) {
  std::ostringstream os;
  // Quantization columns appear only when some group measured int8, so the
  // csv shape of fp32-only campaigns is unchanged.
  const bool any_quantized = std::any_of(
      summary.groups.begin(), summary.groups.end(),
      [](const GroupStats& g) { return g.quantized; });
  os << "dataset,model,fault_level,technique,trials,mean_ad,ad_ci95,"
        "mean_accuracy,golden_accuracy,mean_reverse_ad,mean_naive_drop,"
        "inference_models";
  if (any_quantized) {
    os << ",quantized_accuracy,quantized_ad,quantized_vs_fp32_ad";
  }
  if (options.include_timings) os << ",train_seconds,infer_seconds";
  os << "\n";
  for (const GroupStats& g : summary.groups) {
    os << g.dataset << ',' << g.model << ',' << g.fault_level << ','
       << g.technique << ',' << g.trials << ',' << fixed(g.ad.mean, 6) << ','
       << fixed(g.ad.ci95_half_width, 6) << ','
       << fixed(g.faulty_accuracy.mean, 6) << ','
       << fixed(g.golden_accuracy.mean, 6) << ','
       << fixed(g.reverse_ad.mean, 6) << ',' << fixed(g.naive_drop.mean, 6)
       << ',' << fixed(g.inference_models, 2);
    if (any_quantized) {
      os << ',' << fixed(g.quantized_accuracy.mean, 6) << ','
         << fixed(g.quantized_ad.mean, 6) << ','
         << fixed(g.quantized_vs_fp32_ad.mean, 6);
    }
    if (options.include_timings) {
      os << ',' << fixed(g.train_seconds.mean, 6) << ','
         << fixed(g.infer_seconds.mean, 6);
    }
    os << "\n";
  }
  return os.str();
}

std::string render_json_summary(const CampaignSummary& summary,
                                const ReportOptions& options) {
  using obs::json_number;
  using obs::json_string;
  std::ostringstream os;
  const auto string_array = [](const std::vector<std::string>& xs) {
    std::string out = "[";
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (i) out += ", ";
      out += obs::json_string(xs[i]);
    }
    return out + "]";
  };
  os << "{\"schema\": \"tdfm-study-summary-v1\""
     << ", \"records\": " << summary.total_records
     << ", \"datasets\": " << string_array(summary.datasets)
     << ", \"models\": " << string_array(summary.models)
     << ", \"fault_levels\": " << string_array(summary.fault_levels)
     << ", \"techniques\": " << string_array(summary.techniques)
     << ", \"groups\": [";
  for (std::size_t i = 0; i < summary.groups.size(); ++i) {
    const GroupStats& g = summary.groups[i];
    if (i) os << ", ";
    os << "{\"dataset\": " << json_string(g.dataset)
       << ", \"model\": " << json_string(g.model)
       << ", \"fault_level\": " << json_string(g.fault_level)
       << ", \"technique\": " << json_string(g.technique)
       << ", \"trials\": " << g.trials
       << ", \"mean_ad\": " << json_number(g.ad.mean)
       << ", \"ad_ci95\": " << json_number(g.ad.ci95_half_width)
       << ", \"mean_accuracy\": " << json_number(g.faulty_accuracy.mean)
       << ", \"golden_accuracy\": " << json_number(g.golden_accuracy.mean)
       << ", \"mean_reverse_ad\": " << json_number(g.reverse_ad.mean)
       << ", \"mean_naive_drop\": " << json_number(g.naive_drop.mean)
       << ", \"inference_models\": " << json_number(g.inference_models);
    if (g.quantized) {
      os << ", \"quantized_accuracy\": " << json_number(g.quantized_accuracy.mean)
         << ", \"quantized_ad\": " << json_number(g.quantized_ad.mean)
         << ", \"quantized_vs_fp32_ad\": "
         << json_number(g.quantized_vs_fp32_ad.mean);
    }
    if (options.include_timings) {
      os << ", \"train_seconds\": " << json_number(g.train_seconds.mean)
         << ", \"infer_seconds\": " << json_number(g.infer_seconds.mean);
    }
    os << "}";
  }
  os << "], \"technique_ranks\": [";
  for (std::size_t i = 0; i < summary.technique_summaries.size(); ++i) {
    const TechniqueSummary& t = summary.technique_summaries[i];
    if (i) os << ", ";
    os << "{\"technique\": " << json_string(t.technique)
       << ", \"mean_rank\": " << json_number(t.mean_rank)
       << ", \"mean_ad\": " << json_number(t.mean_ad)
       << ", \"median_ad\": " << json_number(t.median_ad)
       << ", \"contexts\": " << t.contexts << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace tdfm::study
