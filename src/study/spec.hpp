// Campaign grid declaration and stable cell identity.
//
// A StudySpec declares the full factorial grid of the paper's evaluation —
// datasets x models x fault levels x techniques x trials — plus the shared
// training/hyperparameter configuration.  The spec *expands* into cells, and
// every cell gets a content-hashed identity:
//
//   cell id   = hex64(stable_hash64(canonical description of the cell))
//   rng seeds = stable_hash64(role | canonical subset relevant to the role)
//
// Because the seeds are derived from cell *content* (never from execution
// order, thread ids, or a shared RNG stream), a cell computes bit-identical
// results whether it runs first or last, on 1 job or 16, freshly or after a
// `--resume` that skipped half the grid.  The roles partition the axes so
// work can be shared without breaking that guarantee:
//
//   dataset  (kind, scale, spec seed)            shared by the whole grid
//   golden   (dataset, model, trial)             shared across levels+techniques
//   inject   (dataset, level, trial)             same faulty data for all techniques
//   lc-*     (dataset, level, trial)             label correction's pre-injection split
//   fit      (whole cell; ensembles drop the     the per-technique training stream
//             model axis — their member set
//             does not depend on the panel)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "data/synthetic.hpp"
#include "experiment/experiment.hpp"
#include "mitigation/registry.hpp"
#include "models/model_zoo.hpp"
#include "nn/trainer.hpp"

namespace tdfm::study {

using experiment::FaultLevel;

/// Declarative description of one campaign: the grid axes plus the shared
/// training configuration.  Axis order is fixed (dataset-major, trial-minor)
/// so expansion order is stable and reports are deterministic.
struct StudySpec {
  std::string name = "custom";
  std::vector<data::DatasetKind> datasets;
  std::vector<models::Arch> models;
  /// Fault levels; an empty FaultLevel ({}) means "no injection" (Table IV).
  std::vector<FaultLevel> fault_levels;
  std::vector<mitigation::TechniqueKind> techniques;
  std::size_t trials = 1;
  double scale = 1.0;           ///< dataset-size multiplier (bench --scale)
  std::size_t model_width = 8;  ///< base channel width (paper analogue: 64)
  std::uint64_t seed = 42;      ///< campaign master seed
  nn::TrainOptions train_opts;
  mitigation::Hyperparameters hyperparams;
  /// Apply the small-dataset adjustments the benches use for Pneumonia-sim
  /// (batch 8, 2.5x epochs, scale floored at 1.0) so every model sees a
  /// comparable number of optimisation steps.  Off for surgical test specs.
  bool tune_small_datasets = true;
  /// Additionally evaluate every fitted classifier after q8_0 quantization
  /// and record int8 accuracy/AD next to the fp32 numbers.  Changes the cell
  /// identity (quantized predictions are part of the computed bits) but only
  /// when on, so existing campaign journals stay valid.
  bool measure_quantized = false;

  /// Throws InvariantError on a degenerate grid (any empty axis, 0 trials).
  void validate() const;

  /// datasets x models x fault_levels x techniques x trials.
  [[nodiscard]] std::size_t cell_count() const;

  /// "none" or "mislabelling@10%" style level label (expansion axis name).
  [[nodiscard]] std::string fault_level_name(std::size_t index) const;
};

/// One grid point, stored as indices into the spec's axes (trial 0-based).
struct Cell {
  std::size_t dataset = 0;
  std::size_t model = 0;
  std::size_t level = 0;
  std::size_t technique = 0;
  std::size_t trial = 0;

  [[nodiscard]] bool operator==(const Cell&) const = default;
};

/// Expands the grid in deterministic dataset-major order:
/// dataset > model > level > technique > trial.
[[nodiscard]] std::vector<Cell> expand_cells(const StudySpec& spec);

/// Deterministic, platform-independent 64-bit content hash (FNV-1a mixed
/// through a splitmix64 finaliser).  The foundation of cell identity.
[[nodiscard]] std::uint64_t stable_hash64(std::string_view text);

/// Canonical textual description of a cell — every field that influences the
/// cell's computed bits, in fixed order.  Hashing this yields the cell id.
[[nodiscard]] std::string cell_canonical(const StudySpec& spec, const Cell& cell);

/// 16-hex-digit cell identity; stable across runs, processes and platforms.
[[nodiscard]] std::string cell_id(const StudySpec& spec, const Cell& cell);

/// Which of `shard_count` disjoint partitions owns this cell id:
/// stable_hash64(cell id) % shard_count.  Because the input is the content-
/// hash id, the partition is stable across runs, processes, and platforms —
/// N workers agree on ownership with zero coordination.  shard_count == 1
/// maps everything to shard 0.  Throws ConfigError on shard_count == 0.
[[nodiscard]] std::size_t shard_of(std::string_view cell_id,
                                   std::size_t shard_count);

/// The generation spec for one dataset axis entry, with the campaign's scale
/// and small-dataset tuning applied.  The generation seed is itself derived
/// from (kind, scale, campaign seed), so cached datasets are shareable
/// between campaigns that agree on those fields.
[[nodiscard]] data::SyntheticSpec dataset_spec_for(const StudySpec& spec,
                                                   data::DatasetKind kind);

/// Trainer options for one dataset axis entry (Pneumonia-sim gets batch 8
/// and 2.5x epochs when tune_small_datasets is set).
[[nodiscard]] nn::TrainOptions train_options_for(const StudySpec& spec,
                                                 data::DatasetKind kind);

// --- Role-scoped seeds (see header comment for the sharing contract). ---

/// Seed for the golden (clean, no-technique) model of (dataset, model, trial).
[[nodiscard]] std::uint64_t golden_seed(const StudySpec& spec, const Cell& cell);

/// Key identifying the golden model a cell measures against (cache key).
[[nodiscard]] std::uint64_t golden_key(const StudySpec& spec, const Cell& cell);

/// Seed for fault injection at (dataset, level, trial) — technique-invariant
/// so every technique trains on the same faulty data.
[[nodiscard]] std::uint64_t inject_seed(const StudySpec& spec, const Cell& cell);

/// Seeds for label correction's reserved-clean-subset split and the
/// injection into the remaining data (§III-B2).
[[nodiscard]] std::uint64_t lc_split_seed(const StudySpec& spec, const Cell& cell);
[[nodiscard]] std::uint64_t lc_inject_seed(const StudySpec& spec, const Cell& cell);

/// Seed for the technique fit of this cell.  For the ensemble technique the
/// model axis is excluded: its member set ignores the panel model, so panels
/// can share one trained ensemble per (dataset, level, trial).
[[nodiscard]] std::uint64_t fit_seed(const StudySpec& spec, const Cell& cell);

/// Cache key for a shareable fit (currently: ensembles).  Returns 0 for
/// techniques whose fit depends on the panel model (not shareable).
[[nodiscard]] std::uint64_t shared_fit_key(const StudySpec& spec, const Cell& cell);

}  // namespace tdfm::study
