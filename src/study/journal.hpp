// Crash-safe, append-only campaign journal: one JSONL record per completed
// cell, safe under concurrent writer *processes*.
//
// The journal is what makes a killed 2-hour sweep restartable — and what
// makes a sharded multi-process sweep mergeable.  Every completed cell
// appends exactly one self-contained JSON line in a single locked
// write(2) + fdatasync(2) (core::AppendFile), so:
//
//   - appends are O(1) in journal size (no rewrite of earlier records);
//   - two writers on the same file interleave whole lines, never bytes
//     (flock(2) around the write);
//   - a kill -9 can tear at most the final line.  `Journal::load` recovers
//     that case: an unterminated, unparseable tail is dropped (the at-most-
//     one in-flight cell), while an unparseable *terminated* line is real
//     corruption and still throws.
//
// On `--resume` the scheduler loads the journal, keeps the records whose
// cell ids appear in the current expansion, and skips those cells.  Records
// are self-describing (axis names, not indices), so a journal survives axis
// reordering and still refuses records from a different grid (the content
// hash differs).  Per-shard journals from a partitioned campaign are fused
// by `merge_journals`: deduplicated by cell id with an equal-modulo-timing
// conflict check, ordered by cell id, so the merged bytes do not depend on
// shard count, shard order, or which duplicate a work-stealer also computed.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/file_lock.hpp"

namespace tdfm::study {

/// One completed cell.  Everything the Analyzer needs, flat and
/// self-contained; `train_seconds`/`infer_seconds` are the only fields that
/// vary between bit-identical runs (wall-clock), which is why determinism
/// tests compare records "modulo timing".
struct CellRecord {
  std::string cell;         ///< 16-hex content-hash id (spec.hpp)
  std::string dataset;      ///< axis names, not indices — self-describing
  std::string model;
  std::string fault_level;
  std::string technique;
  std::size_t trial = 0;    ///< 1-based
  double golden_accuracy = 0.0;
  double faulty_accuracy = 0.0;
  double ad = 0.0;
  double reverse_ad = 0.0;
  double naive_drop = 0.0;
  double train_seconds = 0.0;
  double infer_seconds = 0.0;
  double inference_models = 1.0;
  bool shared_fit = false;  ///< fit shared across panels (ensemble cache)
  bool quantized = false;   ///< q8_0 measurement ran for this cell
  double quantized_accuracy = 0.0;    ///< int8 model accuracy on faulty data
  double quantized_ad = 0.0;          ///< int8 model AD vs the fp32 golden
  double quantized_vs_fp32_ad = 0.0;  ///< int8 vs this cell's own fp32 preds

  [[nodiscard]] bool operator==(const CellRecord&) const = default;
};

/// True when the records agree on everything except wall-clock timings.
[[nodiscard]] bool equal_modulo_timing(const CellRecord& a, const CellRecord& b);

/// Serialises one record as a single JSON line (no trailing newline).
/// String fields go through obs::json_escape.
[[nodiscard]] std::string to_jsonl(const CellRecord& record);

/// Parses one journal line.  Throws ConfigError on malformed input or
/// missing required fields; unknown keys are ignored (forward compat).
[[nodiscard]] CellRecord parse_record(std::string_view line);

/// Append-only journal bound to a file path.  Thread-safe within a process
/// (the scheduler's job workers append concurrently) and write-safe across
/// processes (each append is one flock-guarded write).  An empty path keeps
/// the journal memory-only (tests, ephemeral bench runs).
class Journal {
 public:
  explicit Journal(std::string path) : path_(std::move(path)) {}

  /// Loads every record of an existing journal file; a missing file yields
  /// an empty vector (first run), but a file that exists and cannot be read
  /// throws ConfigError — silently treating it as fresh would recompute a
  /// finished campaign.  A torn final line (unterminated and unparseable:
  /// the kill -9 signature) is dropped and reported via
  /// `recovered_torn_tail`; any other malformed line throws.
  [[nodiscard]] static std::vector<CellRecord> load(
      const std::string& path, bool* recovered_torn_tail = nullptr);

  /// Adopts records that are already persisted in this journal's file
  /// (resume): they join the in-memory snapshot without being rewritten.
  void adopt(std::vector<CellRecord> records);

  /// Appends one record: O(1) — a single locked write+sync of one line.
  void append(CellRecord record);

  /// Snapshot of all records (adopted + appended), in append order.
  [[nodiscard]] std::vector<CellRecord> records() const;

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  mutable std::mutex mu_;
  std::string path_;
  std::vector<CellRecord> records_;
  std::unique_ptr<core::AppendFile> file_;  ///< opened lazily, first append
};

/// Result of fusing per-shard journals (merge_journals).
struct MergeResult {
  /// Deduplicated records ordered by cell id — byte-stable: independent of
  /// input path order and of which shard(s) computed a duplicated cell.
  std::vector<CellRecord> records;
  std::size_t inputs = 0;      ///< records read across all journals
  std::size_t duplicates = 0;  ///< records dropped as timing-only duplicates
};

/// Finds the per-shard journals next to `base`: every
/// `<base>.shard<i>of<N>.jsonl` sibling (the naming study_runner's --spawn
/// driver writes).  Returns them ordered by shard index.  Throws
/// ConfigError when the siblings disagree on N, repeat an index, or leave a
/// hole in 0..N-1 — an incomplete set would silently merge a partial
/// campaign.  No siblings at all returns empty (the caller decides whether
/// that is an error).
[[nodiscard]] std::vector<std::string> discover_shard_journals(
    const std::string& base);

/// Loads every journal (torn tails recovered — a merged shard may have
/// crashed) and fuses them: records sharing a cell id must be equal modulo
/// timing, otherwise ConfigError names the conflicting cell; among timing
/// duplicates the lexicographically-smallest serialisation wins, making the
/// merged journal a pure function of the set of computed results.
[[nodiscard]] MergeResult merge_journals(const std::vector<std::string>& paths);

/// Writes `records` as a whole journal file atomically (tmp + rename):
/// merge output must never be observable half-written.
void write_journal(const std::string& path,
                   const std::vector<CellRecord>& records);

}  // namespace tdfm::study
