// Crash-safe campaign journal: one JSONL record per completed cell.
//
// The journal is what makes a killed 2-hour sweep restartable: every
// completed cell appends one self-contained JSON line, and an append
// rewrites the whole journal to `<path>.tmp` and renames it over `<path>`.
// rename(2) within a directory is atomic on POSIX, so the journal on disk is
// always a prefix-consistent set of complete records — a crash can lose at
// most the cell that was being appended, never corrupt earlier lines.
// (Journals hold one line per grid cell — thousands at paper scale — so the
// rewrite is microseconds, a rounding error next to a cell's training time.)
//
// On `--resume` the scheduler loads the journal, keeps the records whose
// cell ids appear in the current expansion, and skips those cells.  Records
// are self-describing (axis names, not indices), so a journal survives axis
// reordering and still refuses records from a different grid (the content
// hash differs).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace tdfm::study {

/// One completed cell.  Everything the Analyzer needs, flat and
/// self-contained; `train_seconds`/`infer_seconds` are the only fields that
/// vary between bit-identical runs (wall-clock), which is why determinism
/// tests compare records "modulo timing".
struct CellRecord {
  std::string cell;         ///< 16-hex content-hash id (spec.hpp)
  std::string dataset;      ///< axis names, not indices — self-describing
  std::string model;
  std::string fault_level;
  std::string technique;
  std::size_t trial = 0;    ///< 1-based
  double golden_accuracy = 0.0;
  double faulty_accuracy = 0.0;
  double ad = 0.0;
  double reverse_ad = 0.0;
  double naive_drop = 0.0;
  double train_seconds = 0.0;
  double infer_seconds = 0.0;
  double inference_models = 1.0;
  bool shared_fit = false;  ///< fit shared across panels (ensemble cache)
  bool quantized = false;   ///< q8_0 measurement ran for this cell
  double quantized_accuracy = 0.0;    ///< int8 model accuracy on faulty data
  double quantized_ad = 0.0;          ///< int8 model AD vs the fp32 golden
  double quantized_vs_fp32_ad = 0.0;  ///< int8 vs this cell's own fp32 preds

  [[nodiscard]] bool operator==(const CellRecord&) const = default;
};

/// True when the records agree on everything except wall-clock timings.
[[nodiscard]] bool equal_modulo_timing(const CellRecord& a, const CellRecord& b);

/// Serialises one record as a single JSON line (no trailing newline).
/// String fields go through obs::json_escape.
[[nodiscard]] std::string to_jsonl(const CellRecord& record);

/// Parses one journal line.  Throws ConfigError on malformed input or
/// missing required fields; unknown keys are ignored (forward compat).
[[nodiscard]] CellRecord parse_record(std::string_view line);

/// Append-only journal bound to a file path.  Thread-safe: the scheduler's
/// job workers append concurrently.  An empty path keeps the journal
/// memory-only (tests, ephemeral bench runs).
class Journal {
 public:
  explicit Journal(std::string path) : path_(std::move(path)) {}

  /// Loads every record of an existing journal file; a missing file yields
  /// an empty vector (first run).  Malformed lines throw ConfigError.
  [[nodiscard]] static std::vector<CellRecord> load(const std::string& path);

  /// Adopts already-completed records (resume) without touching the file;
  /// the next append persists them together with the new record.
  void adopt(std::vector<CellRecord> records);

  /// Appends one record and atomically rewrites the journal file.
  void append(CellRecord record);

  /// Snapshot of all records (adopted + appended), in append order.
  [[nodiscard]] std::vector<CellRecord> records() const;

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void persist_locked() const;

  mutable std::mutex mu_;
  std::string path_;
  std::vector<CellRecord> records_;
};

}  // namespace tdfm::study
