// Shared-dataset memoisation for campaign cells.
//
// Every cell of a campaign that touches the same (kind, scale, seed) dataset
// needs the same golden generate() output; at paper scale that is hundreds
// of cells per dataset.  The cache computes each dataset exactly once —
// concurrent requesters block on a shared_future while the first one
// generates — and hands out shared_ptr<const> snapshots, so cells on any
// scheduler thread read the same immutable data.  Hits and misses are
// counted both locally (CampaignResult) and in the obs metrics registry
// ("study.dataset_cache.hits"/"...misses", visible with --metrics).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "data/synthetic.hpp"

namespace tdfm::study {

/// Compute-once keyed map: get() returns the cached value or runs `make`
/// exactly once per key, with concurrent requesters waiting on the result.
/// A factory that throws propagates to every waiter of that attempt and the
/// key is cleared so a later call may retry.
template <typename V>
class OnceMap {
 public:
  using Factory = std::function<V()>;

  /// `computed` (optional) reports whether THIS call ran the factory — the
  /// race-free way for callers to attribute a hit or miss to themselves.
  [[nodiscard]] V get(std::uint64_t key, const Factory& make,
                      bool* computed = nullptr) {
    std::promise<V> promise;  // only used if this caller becomes the owner
    std::shared_future<V> future;
    bool owner = false;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      auto it = map_.find(key);
      if (it == map_.end()) {
        future = promise.get_future().share();
        map_.emplace(key, future);
        owner = true;
        misses_.fetch_add(1, std::memory_order_relaxed);
      } else {
        future = it->second;
        hits_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (computed != nullptr) *computed = owner;
    if (owner) {
      try {
        promise.set_value(make());
      } catch (...) {
        promise.set_exception(std::current_exception());
        const std::lock_guard<std::mutex> lock(mu_);
        map_.erase(key);  // allow a retry after a failed computation
      }
    }
    return future.get();
  }

  [[nodiscard]] std::uint64_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
  }

 private:
  std::mutex mu_;
  std::unordered_map<std::uint64_t, std::shared_future<V>> map_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// Process-wide dataset memoiser.  Campaigns (and repeated campaigns in one
/// process, e.g. bench sweeps) share generated datasets; clear() drops them
/// to bound memory between unrelated workloads.
class DatasetCache {
 public:
  [[nodiscard]] static DatasetCache& global();

  /// Returns the train/test pair for `spec`, generating it at most once per
  /// (kind, image size, scale, seed).  Thread-safe; the returned data is
  /// immutable and shared.
  [[nodiscard]] std::shared_ptr<const data::TrainTestPair> get(
      const data::SyntheticSpec& spec);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  [[nodiscard]] Stats stats() const;

  void clear();

 private:
  OnceMap<std::shared_ptr<const data::TrainTestPair>> map_;
};

}  // namespace tdfm::study
