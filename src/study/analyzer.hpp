// Journal analysis: fold per-cell records into the paper's aggregates.
//
// The Analyzer is a pure fold over CellRecords — it never recomputes
// anything, so `--report` on a finished journal is instant and a resumed
// campaign's report is byte-identical to a from-scratch one.  Timing fields
// are excluded from every rendering by default (ReportOptions) precisely to
// keep that byte-identity; pass include_timings for the §IV-E overhead view.
//
// Aggregations mirror the paper:
//   * per-(dataset, model, fault level, technique) mean ± 95% CI over trials
//     — the cells of Figs. 3/4 and Table IV;
//   * per-technique mean rank across contexts (a context = dataset x model x
//     fault level), the statistic behind Observations 1-3 ("ensembles rank
//     best most consistently, ...").
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/statistics.hpp"
#include "study/journal.hpp"

namespace tdfm::study {

/// Aggregate of one (dataset, model, fault level, technique) group.
struct GroupStats {
  std::string dataset;
  std::string model;
  std::string fault_level;
  std::string technique;
  std::size_t trials = 0;
  SampleStats ad;
  SampleStats reverse_ad;
  SampleStats naive_drop;
  SampleStats faulty_accuracy;
  SampleStats golden_accuracy;
  SampleStats train_seconds;
  SampleStats infer_seconds;
  double inference_models = 1.0;
  /// q8_0 measurement (StudySpec::measure_quantized); the quantized stats
  /// below are meaningful only when true.
  bool quantized = false;
  SampleStats quantized_accuracy;
  SampleStats quantized_ad;          ///< int8 vs fp32 golden
  SampleStats quantized_vs_fp32_ad;  ///< int8 vs the same cell's fp32 preds
};

/// Per-technique cross-context roll-up (Observations 1-3).
struct TechniqueSummary {
  std::string technique;
  double mean_ad = 0.0;    ///< mean of all per-record ADs
  double median_ad = 0.0;  ///< median of all per-record ADs
  double mean_rank = 0.0;  ///< mean rank across complete contexts (1 = best)
  std::size_t contexts = 0;  ///< contexts that scored every technique
};

struct CampaignSummary {
  // Axis value orderings, first-seen in the record stream (expansion order
  // when the records come from run_campaign).
  std::vector<std::string> datasets;
  std::vector<std::string> models;
  std::vector<std::string> fault_levels;
  std::vector<std::string> techniques;
  /// Nested-axis order: dataset > model > fault level > technique; groups
  /// with no records are omitted.
  std::vector<GroupStats> groups;
  /// Sorted best mean rank first (ties keep technique order).
  std::vector<TechniqueSummary> technique_summaries;
  std::size_t total_records = 0;
};

/// Folds records into the summary.  Order-insensitive modulo the first-seen
/// axis orderings; records from run_campaign arrive in expansion order, so
/// identical grids summarise identically.
[[nodiscard]] CampaignSummary summarize_campaign(
    std::span<const CellRecord> records);

struct ReportOptions {
  /// Include wall-clock columns (train/infer seconds).  Off by default so
  /// reports are byte-identical across resumes, job counts, and reorderings.
  bool include_timings = false;
};

/// Box-drawing tables for the terminal: one AD panel per (dataset, model),
/// the technique roll-up, and (optionally) the overhead table.
[[nodiscard]] std::string render_ascii(const CampaignSummary& summary,
                                       const ReportOptions& options = {});

/// The same content as GitHub-markdown tables (EXPERIMENTS.md material).
[[nodiscard]] std::string render_markdown(const CampaignSummary& summary,
                                          const ReportOptions& options = {});

/// One CSV row per group, for downstream plotting.
[[nodiscard]] std::string render_csv(const CampaignSummary& summary,
                                     const ReportOptions& options = {});

/// Machine-readable summary (schema "tdfm-study-summary-v1").
[[nodiscard]] std::string render_json_summary(const CampaignSummary& summary,
                                              const ReportOptions& options = {});

}  // namespace tdfm::study
