#include "study/presets.hpp"

#include <utility>

#include "core/error.hpp"
#include "experiment/experiment.hpp"

namespace tdfm::study {

namespace {

using data::DatasetKind;
using faults::FaultType;
using mitigation::TechniqueKind;
using models::Arch;

/// The paper's Fig. 3 / Table IV model panel.
std::vector<Arch> panel_models() {
  return {Arch::kResNet50, Arch::kVGG16, Arch::kConvNet, Arch::kMobileNet};
}

std::vector<DatasetKind> all_datasets() {
  return {DatasetKind::kCifar10Sim, DatasetKind::kGtsrbSim,
          DatasetKind::kPneumoniaSim};
}

/// The paper runs LC only for mislabelling faults (§IV-C).
std::vector<TechniqueKind> techniques_without_lc() {
  return {TechniqueKind::kBaseline, TechniqueKind::kLabelSmoothing,
          TechniqueKind::kRobustLoss, TechniqueKind::kKnowledgeDistillation,
          TechniqueKind::kEnsemble};
}

/// Shared bench-scale skeleton (mirrors the bench binaries' defaults).
StudySpec bench_scale(std::string name) {
  StudySpec spec;
  spec.name = std::move(name);
  spec.trials = 1;
  spec.scale = 0.4;
  spec.model_width = 8;
  spec.seed = 42;
  spec.train_opts.epochs = 10;
  return spec;
}

std::vector<Preset> build_presets() {
  std::vector<Preset> presets;

  {
    // Mirrors the tier-1 experiment test's tiny study: one small dataset,
    // one shallow model, three techniques, two trials.  Finishes in seconds
    // (also under TSan) — the CI guard for scheduler/journal/cache wiring.
    StudySpec spec;
    spec.name = "smoke";
    spec.datasets = {DatasetKind::kPneumoniaSim};
    spec.models = {Arch::kConvNet};
    spec.fault_levels = {{faults::FaultSpec{FaultType::kMislabelling, 30.0}}};
    spec.techniques = {TechniqueKind::kBaseline, TechniqueKind::kLabelSmoothing,
                       TechniqueKind::kEnsemble};
    spec.trials = 2;
    spec.scale = 0.5;
    spec.model_width = 4;
    spec.seed = 5;
    spec.train_opts.epochs = 2;
    spec.train_opts.batch_size = 16;
    spec.hyperparams.ens_members = {Arch::kConvNet};
    spec.tune_small_datasets = false;
    presets.push_back({"smoke", "CI-sized grid (seconds, TSan-clean)",
                       std::move(spec)});
  }
  {
    StudySpec spec = bench_scale("fig3-mislabelling");
    spec.datasets = {DatasetKind::kGtsrbSim};
    spec.models = panel_models();
    spec.fault_levels = experiment::standard_sweep(FaultType::kMislabelling);
    spec.techniques = mitigation::all_techniques();
    presets.push_back({"fig3-mislabelling",
                       "Fig. 3(a-d): AD across models, GTSRB, mislabelling",
                       std::move(spec)});
  }
  {
    StudySpec spec = bench_scale("fig3-removal");
    spec.datasets = {DatasetKind::kGtsrbSim};
    spec.models = panel_models();
    spec.fault_levels = experiment::standard_sweep(FaultType::kRemoval);
    spec.techniques = techniques_without_lc();
    presets.push_back({"fig3-removal",
                       "Fig. 3(e-h): AD across models, GTSRB, removal",
                       std::move(spec)});
  }
  {
    StudySpec spec = bench_scale("fig4-mislabelling");
    spec.datasets = all_datasets();
    spec.models = {Arch::kResNet50};
    spec.fault_levels = experiment::standard_sweep(FaultType::kMislabelling);
    spec.techniques = mitigation::all_techniques();
    presets.push_back({"fig4-mislabelling",
                       "Fig. 4(a,c,e): AD across datasets, ResNet50, mislabelling",
                       std::move(spec)});
  }
  {
    StudySpec spec = bench_scale("fig4-repetition");
    spec.datasets = all_datasets();
    spec.models = {Arch::kMobileNet};
    spec.fault_levels = experiment::standard_sweep(FaultType::kRepetition);
    spec.techniques = techniques_without_lc();
    presets.push_back({"fig4-repetition",
                       "Fig. 4(b,d,f): AD across datasets, MobileNet, repetition",
                       std::move(spec)});
  }
  {
    // The cross-product superset of both Fig. 4 rows — one resumable
    // campaign instead of two bench invocations.
    StudySpec spec = bench_scale("fig4");
    spec.datasets = all_datasets();
    spec.models = {Arch::kResNet50, Arch::kMobileNet};
    spec.fault_levels = experiment::standard_sweep(FaultType::kMislabelling);
    for (FaultLevel& level :
         experiment::standard_sweep(FaultType::kRepetition)) {
      spec.fault_levels.push_back(std::move(level));
    }
    spec.techniques = mitigation::all_techniques();
    presets.push_back({"fig4",
                       "Fig. 4 superset: both datasets-axis panels in one grid",
                       std::move(spec)});
  }
  {
    StudySpec spec = bench_scale("table4");
    spec.datasets = all_datasets();
    spec.models = panel_models();
    spec.fault_levels = {{}};  // no injection: Table IV measures clean training
    spec.techniques = mitigation::all_techniques();
    presets.push_back({"table4",
                       "Table IV: accuracies without fault injection",
                       std::move(spec)});
  }
  {
    // int8-vs-fp32 deployment question: does q8_0 quantization change how
    // much faulty training data hurts?  Small grid, every cell measured
    // twice (fp32 then quantized) against the same fp32 golden.
    StudySpec spec = bench_scale("quant-ad");
    spec.datasets = {DatasetKind::kGtsrbSim};
    spec.models = {Arch::kConvNet, Arch::kMobileNet};
    spec.fault_levels = {{}, {faults::FaultSpec{FaultType::kMislabelling, 30.0}}};
    spec.techniques = {TechniqueKind::kBaseline, TechniqueKind::kLabelSmoothing,
                       TechniqueKind::kRobustLoss, TechniqueKind::kEnsemble};
    spec.hyperparams.ens_members = {Arch::kConvNet, Arch::kMobileNet};
    spec.measure_quantized = true;
    presets.push_back({"quant-ad",
                       "int8 vs fp32 AD per mitigation technique (q8_0)",
                       std::move(spec)});
  }
  {
    // The overnight grid: every architecture and dataset, all three fault
    // sweeps plus the clean level, 20 trials, full-size datasets.
    StudySpec spec;
    spec.name = "paper-full";
    spec.datasets = all_datasets();
    spec.models = models::all_architectures();
    spec.fault_levels = {{}};
    for (const FaultType type :
         {FaultType::kMislabelling, FaultType::kRepetition, FaultType::kRemoval}) {
      for (FaultLevel& level : experiment::standard_sweep(type)) {
        spec.fault_levels.push_back(std::move(level));
      }
    }
    spec.techniques = mitigation::all_techniques();
    spec.trials = 20;
    spec.scale = 1.0;
    spec.model_width = 8;
    spec.seed = 42;
    spec.train_opts.epochs = 10;
    presets.push_back({"paper-full",
                       "the paper's full factorial grid (overnight; resumable; "
                       "made for --spawn N sharding)",
                       std::move(spec)});
  }
  return presets;
}

}  // namespace

const std::vector<Preset>& all_presets() {
  static const std::vector<Preset> presets = build_presets();
  return presets;
}

std::vector<std::string> preset_names() {
  std::vector<std::string> names;
  for (const Preset& p : all_presets()) names.push_back(p.name);
  return names;
}

const Preset& preset(std::string_view name) {
  for (const Preset& p : all_presets()) {
    if (p.name == name) return p;
  }
  std::string known;
  for (const Preset& p : all_presets()) {
    if (!known.empty()) known += ", ";
    known += p.name;
  }
  throw ConfigError("unknown study preset '" + std::string(name) +
                    "' (known: " + known + ")");
}

StudySpec preset_spec(std::string_view name) { return preset(name).spec; }

}  // namespace tdfm::study
