// Campaign scheduler: resumable, parallel, order-independent cell execution.
//
// run_campaign expands the spec, drops every cell already present in the
// journal (--resume), keeps only this shard's partition when sharded
// (shard_of(cell_id) == shard_index), and executes the remainder on `jobs`
// worker threads.  Idle sharded workers can optionally steal: rescan the
// sibling shards' journals and claim any grid cell no journal records yet.
// Workers pull cells from a shared atomic cursor; because every cell's RNG
// streams are derived from cell content (spec.hpp), the computed records are
// bit-identical for any job count, any execution order (--shuffle), and any
// resume point — only the wall-clock fields differ.  Each completed cell is
// appended to the journal atomically before the next one starts, so killing
// the process loses at most the in-flight cells.
//
// Sharing without coupling: cells coordinate exclusively through
// compute-once caches (datasets, golden models, panel-shared ensemble fits)
// keyed by content hashes, so a cache hit returns the exact bytes a lone
// recomputation would produce.
//
// Threading contract: with jobs > 1 every worker runs under
// core::ThreadPool::InlineScope (the tdfm::serve pattern) so the nested
// training hot paths execute inline instead of contending for the global
// pool, and per-fit thread requests are disabled.  With jobs == 1 the cells
// run on the calling thread and may use the global pool via
// TrainOptions::threads — parallelism *within* a cell instead of across
// cells.  Either way the arithmetic is identical.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "study/journal.hpp"
#include "study/spec.hpp"

namespace tdfm::study {

struct RunOptions {
  /// Concurrent cells (scheduler worker threads); 0 = hardware concurrency.
  std::size_t jobs = 1;
  /// Skip cells already recorded in the journal instead of starting fresh.
  bool resume = false;
  /// Journal file; empty = memory-only (no persistence, no resume).
  std::string journal_path;
  /// Non-zero: execute pending cells in a shuffled order (determinism is
  /// unaffected — this exists to *prove* that, and to spread cache misses).
  std::uint64_t shuffle_seed = 0;
  /// Shard partition: this process owns the pending cells with
  /// shard_of(cell_id, shard_count) == shard_index.  The partition is a pure
  /// function of cell content, so N processes each given i/N cover the grid
  /// disjointly with zero coordination.  shard_count > 1 requires a journal
  /// (the shard's output *is* its journal; merge_journals fuses them).
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// After draining its own shard, rescan sibling journals and claim cells
  /// no journal has recorded yet (an idle shard helps a slow one).  Cells
  /// in flight elsewhere may be computed twice — harmless: results are
  /// bit-identical and merge_journals deduplicates.
  bool work_steal = false;
  /// Sibling shards' journal paths consulted by work stealing.  Missing
  /// files read as empty (that shard has not started); unreadable ones are
  /// skipped for scanning purposes (stealing is advisory, not load-bearing).
  std::vector<std::string> sibling_journals;
  /// Optional per-completion hook; invoked from worker threads (may run
  /// concurrently — the callee synchronises).
  std::function<void(const CellRecord&)> on_cell;
  /// Observability plane directory: non-empty starts a SnapshotExporter that
  /// periodically writes this process's metrics + progress to
  /// `<obs_dir>/metrics-<pid>.jsonl` (read by --progress / --obs-report).
  /// Purely observational — journal bytes and records are unaffected.
  std::string obs_dir;
  std::int64_t obs_interval_ms = 500;
  /// Crash drill (test hook, wired to study_runner --abort-after-cells and
  /// used by scripts/study_shard_smoke.sh): when non-zero, raise SIGABRT
  /// right after beginning the N-th cell this process starts, so the flight
  /// recorder's dump must name that cell as in flight.  0 = disabled.
  std::uint64_t abort_after_cells = 0;
};

struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

struct CampaignResult {
  StudySpec spec;
  /// Records in expansion order.  One per grid cell for an unsharded run;
  /// a sharded run covers its own shard's cells (plus journaled and stolen
  /// ones) — merge_journals + the analyzer reassemble the full grid.
  std::vector<CellRecord> records;
  std::size_t executed = 0;  ///< cells computed by this run (incl. stolen)
  std::size_t stolen = 0;    ///< cells claimed from sibling shards
  std::size_t skipped = 0;   ///< cells taken from the journal
  CacheCounters dataset_cache;     ///< this run's golden-dataset reuse
  CacheCounters golden_cache;      ///< golden-model reuse across cells
  CacheCounters shared_fit_cache;  ///< ensemble fits shared across panels
  double elapsed_seconds = 0.0;
};

/// Runs (or resumes) the campaign.  Throws on the first failing cell after
/// draining in-flight workers; completed cells remain journaled, so a rerun
/// with resume=true continues where the failure stopped.
[[nodiscard]] CampaignResult run_campaign(const StudySpec& spec,
                                          const RunOptions& options = {});

}  // namespace tdfm::study
