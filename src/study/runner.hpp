// Campaign scheduler: resumable, parallel, order-independent cell execution.
//
// run_campaign expands the spec, drops every cell already present in the
// journal (--resume), and executes the remainder on `jobs` worker threads.
// Workers pull cells from a shared atomic cursor; because every cell's RNG
// streams are derived from cell content (spec.hpp), the computed records are
// bit-identical for any job count, any execution order (--shuffle), and any
// resume point — only the wall-clock fields differ.  Each completed cell is
// appended to the journal atomically before the next one starts, so killing
// the process loses at most the in-flight cells.
//
// Sharing without coupling: cells coordinate exclusively through
// compute-once caches (datasets, golden models, panel-shared ensemble fits)
// keyed by content hashes, so a cache hit returns the exact bytes a lone
// recomputation would produce.
//
// Threading contract: with jobs > 1 every worker runs under
// core::ThreadPool::InlineScope (the tdfm::serve pattern) so the nested
// training hot paths execute inline instead of contending for the global
// pool, and per-fit thread requests are disabled.  With jobs == 1 the cells
// run on the calling thread and may use the global pool via
// TrainOptions::threads — parallelism *within* a cell instead of across
// cells.  Either way the arithmetic is identical.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "study/journal.hpp"
#include "study/spec.hpp"

namespace tdfm::study {

struct RunOptions {
  /// Concurrent cells (scheduler worker threads); 0 = hardware concurrency.
  std::size_t jobs = 1;
  /// Skip cells already recorded in the journal instead of starting fresh.
  bool resume = false;
  /// Journal file; empty = memory-only (no persistence, no resume).
  std::string journal_path;
  /// Non-zero: execute pending cells in a shuffled order (determinism is
  /// unaffected — this exists to *prove* that, and to spread cache misses).
  std::uint64_t shuffle_seed = 0;
  /// Optional per-completion hook; invoked from worker threads (may run
  /// concurrently — the callee synchronises).
  std::function<void(const CellRecord&)> on_cell;
};

struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

struct CampaignResult {
  StudySpec spec;
  /// One record per grid cell, in expansion order (resumed + executed).
  std::vector<CellRecord> records;
  std::size_t executed = 0;  ///< cells computed by this run
  std::size_t skipped = 0;   ///< cells taken from the journal
  CacheCounters dataset_cache;     ///< this run's golden-dataset reuse
  CacheCounters golden_cache;      ///< golden-model reuse across cells
  CacheCounters shared_fit_cache;  ///< ensemble fits shared across panels
  double elapsed_seconds = 0.0;
};

/// Runs (or resumes) the campaign.  Throws on the first failing cell after
/// draining in-flight workers; completed cells remain journaled, so a rerun
/// with resume=true continues where the failure stopped.
[[nodiscard]] CampaignResult run_campaign(const StudySpec& spec,
                                          const RunOptions& options = {});

}  // namespace tdfm::study
