// Live campaign progress, assembled from the observability plane.
//
// The --progress driver never touches journals or worker state: it re-reads
// the snapshot directory (obs/snapshot.hpp) each tick, folds the per-process
// files with obs::Aggregator, and renders one status line.  Strictly
// read-only — a campaign with --progress produces byte-identical journals,
// reports, and CSVs to one without.
#pragma once

#include <cstddef>
#include <string>

#include "obs/snapshot.hpp"

namespace tdfm::study {

/// Per-shard live view distilled from its newest snapshot.
struct ShardProgress {
  std::size_t shard_index = 0;
  std::int64_t pid = 0;
  std::size_t done = 0;      ///< journaled + executed by that process
  std::size_t executed = 0;  ///< computed this run (incl. stolen)
  std::size_t stolen = 0;
  double cells_per_second = 0.0;  ///< executed / elapsed
};

/// Fleet-wide progress: totals, throughput, ETA, cache effectiveness.
struct ProgressSummary {
  std::size_t shards = 0;     ///< shards that have exported at least once
  std::size_t grid_cells = 0;
  std::size_t done = 0;       ///< sum of per-shard done
  std::size_t executed = 0;
  std::size_t stolen = 0;
  double cells_per_second = 0.0;  ///< summed across shards
  double eta_seconds = -1.0;      ///< < 0: unknown (no throughput yet)
  /// Cache hit rates in [0,1]; < 0 when that cache saw no traffic.
  double dataset_hit_rate = -1.0;
  double golden_hit_rate = -1.0;
  double shared_fit_hit_rate = -1.0;
  std::vector<ShardProgress> per_shard;  ///< sorted by shard index
};

/// Folds an aggregated snapshot set into the live view.
[[nodiscard]] ProgressSummary summarize_progress(const obs::Aggregator& agg);

/// One human-readable status line (no trailing newline), e.g.
/// "cells 9/12 75.0% | 3 shards | 1.8 cells/s | ETA 2s | cache ds 67% "
/// "golden 50% shared 33% | stolen 1".  Suitable for "\r" live rendering.
[[nodiscard]] std::string render_progress_line(const ProgressSummary& p);

}  // namespace tdfm::study
