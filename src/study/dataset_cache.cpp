#include "study/dataset_cache.hpp"

#include <cstdio>
#include <string>

#include "obs/metrics.hpp"
#include "study/spec.hpp"

namespace tdfm::study {

DatasetCache& DatasetCache::global() {
  static DatasetCache cache;
  return cache;
}

namespace {

std::uint64_t dataset_key(const data::SyntheticSpec& spec) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "tdfm.dataset-key.v1|%s|%zu|%.9g|%llu",
                data::dataset_name(spec.kind), spec.image_size, spec.scale,
                static_cast<unsigned long long>(spec.seed));
  return stable_hash64(buf);
}

}  // namespace

std::shared_ptr<const data::TrainTestPair> DatasetCache::get(
    const data::SyntheticSpec& spec) {
  // Registered once, counted per lookup; visible via --metrics scrapes.
  static obs::Counter hit_counter =
      obs::Registry::global().counter("study.dataset_cache.hits");
  static obs::Counter miss_counter =
      obs::Registry::global().counter("study.dataset_cache.misses");

  bool computed = false;
  auto pair = map_.get(
      dataset_key(spec),
      [&spec] {
        return std::make_shared<const data::TrainTestPair>(data::generate(spec));
      },
      &computed);
  if (computed) {
    miss_counter.add();
  } else {
    hit_counter.add();
  }
  return pair;
}

DatasetCache::Stats DatasetCache::stats() const {
  return Stats{map_.hits(), map_.misses()};
}

void DatasetCache::clear() { map_.clear(); }

}  // namespace tdfm::study
