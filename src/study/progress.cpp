#include "study/progress.hpp"

#include <algorithm>
#include <cstdio>

namespace tdfm::study {

namespace {

/// hits/(hits+misses), or -1 when the cache saw no traffic.
double hit_rate(const std::vector<obs::MetricSample>& samples,
                const std::string& prefix) {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (const obs::MetricSample& s : samples) {
    if (s.kind != obs::MetricSample::Kind::kCounter) continue;
    if (s.name == prefix + ".hits") hits = s.count;
    else if (s.name == prefix + ".misses") misses = s.count;
  }
  const std::uint64_t total = hits + misses;
  if (total == 0) return -1.0;
  return static_cast<double>(hits) / static_cast<double>(total);
}

}  // namespace

ProgressSummary summarize_progress(const obs::Aggregator& agg) {
  ProgressSummary p;
  for (const obs::SnapshotMeta& m : agg.latest_per_shard()) {
    ShardProgress sp;
    sp.shard_index = m.shard_index;
    sp.pid = m.pid;
    sp.done = m.cells_done;
    sp.executed = m.cells_executed;
    sp.stolen = m.cells_stolen;
    if (m.elapsed_seconds > 0.0) {
      sp.cells_per_second =
          static_cast<double>(m.cells_executed) / m.elapsed_seconds;
    }
    p.grid_cells = std::max(p.grid_cells, m.grid_cells);
    p.done += sp.done;
    p.executed += sp.executed;
    p.stolen += sp.stolen;
    p.cells_per_second += sp.cells_per_second;
    p.per_shard.push_back(sp);
  }
  p.shards = p.per_shard.size();
  // Stolen cells are journaled by the stealer and also counted done by the
  // owner once it rescans, so clamp rather than report >100%.
  p.done = std::min(p.done, p.grid_cells);
  if (p.cells_per_second > 0.0 && p.grid_cells >= p.done) {
    p.eta_seconds =
        static_cast<double>(p.grid_cells - p.done) / p.cells_per_second;
  }
  const std::vector<obs::MetricSample> samples = agg.samples();
  p.dataset_hit_rate = hit_rate(samples, "study.dataset_cache");
  p.golden_hit_rate = hit_rate(samples, "study.golden_cache");
  p.shared_fit_hit_rate = hit_rate(samples, "study.shared_fit_cache");
  return p;
}

std::string render_progress_line(const ProgressSummary& p) {
  char buf[128];
  std::string line = "cells " + std::to_string(p.done) + "/" +
                     std::to_string(p.grid_cells);
  if (p.grid_cells > 0) {
    std::snprintf(buf, sizeof(buf), " %.1f%%",
                  100.0 * static_cast<double>(p.done) /
                      static_cast<double>(p.grid_cells));
    line += buf;
  }
  line += " | " + std::to_string(p.shards) +
          (p.shards == 1 ? " shard" : " shards");
  std::snprintf(buf, sizeof(buf), " | %.2f cells/s", p.cells_per_second);
  line += buf;
  if (p.eta_seconds >= 0.0) {
    std::snprintf(buf, sizeof(buf), " | ETA %.0fs", p.eta_seconds);
    line += buf;
  }
  std::string cache;
  const auto add_rate = [&](const char* name, double rate) {
    if (rate < 0.0) return;
    std::snprintf(buf, sizeof(buf), "%s%s %.0f%%", cache.empty() ? "" : " ",
                  name, 100.0 * rate);
    cache += buf;
  };
  add_rate("ds", p.dataset_hit_rate);
  add_rate("golden", p.golden_hit_rate);
  add_rate("shared", p.shared_fit_hit_rate);
  if (!cache.empty()) line += " | cache " + cache;
  if (p.stolen > 0) line += " | stolen " + std::to_string(p.stolen);
  // Per-shard cells/sec, the at-a-glance "which shard is slow" view.
  if (p.per_shard.size() > 1) {
    line += " |";
    for (const ShardProgress& sp : p.per_shard) {
      std::snprintf(buf, sizeof(buf), " s%zu:%.2f/s", sp.shard_index,
                    sp.cells_per_second);
      line += buf;
    }
  }
  return line;
}

}  // namespace tdfm::study
