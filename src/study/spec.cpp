#include "study/spec.hpp"

#include <algorithm>
#include <cstdio>

#include "core/error.hpp"

namespace tdfm::study {

void StudySpec::validate() const {
  TDFM_CHECK(!datasets.empty(), "campaign needs at least one dataset");
  TDFM_CHECK(!models.empty(), "campaign needs at least one model");
  TDFM_CHECK(!fault_levels.empty(), "campaign needs at least one fault level");
  TDFM_CHECK(!techniques.empty(), "campaign needs at least one technique");
  TDFM_CHECK(trials > 0, "campaign needs at least one trial");
  TDFM_CHECK(scale > 0.0, "dataset scale must be positive");
  TDFM_CHECK(model_width > 0, "model width must be positive");
  TDFM_CHECK(train_opts.epochs > 0, "training needs at least one epoch");
}

std::size_t StudySpec::cell_count() const {
  return datasets.size() * models.size() * fault_levels.size() *
         techniques.size() * trials;
}

std::string StudySpec::fault_level_name(std::size_t index) const {
  TDFM_CHECK(index < fault_levels.size(), "fault level index out of range");
  const FaultLevel& level = fault_levels[index];
  if (level.empty()) return "none";
  std::string out;
  for (std::size_t i = 0; i < level.size(); ++i) {
    if (i) out += "+";
    out += level[i].to_string();
  }
  return out;
}

std::vector<Cell> expand_cells(const StudySpec& spec) {
  spec.validate();
  std::vector<Cell> cells;
  cells.reserve(spec.cell_count());
  for (std::size_t d = 0; d < spec.datasets.size(); ++d)
    for (std::size_t m = 0; m < spec.models.size(); ++m)
      for (std::size_t l = 0; l < spec.fault_levels.size(); ++l)
        for (std::size_t t = 0; t < spec.techniques.size(); ++t)
          for (std::size_t r = 0; r < spec.trials; ++r)
            cells.push_back(Cell{d, m, l, t, r});
  return cells;
}

std::uint64_t stable_hash64(std::string_view text) {
  // FNV-1a 64 over the bytes, then one splitmix64 finalising round so that
  // short, similar canonical strings still land far apart.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  std::uint64_t state = h;
  return splitmix64(state);
}

namespace {

std::string u64_str(std::uint64_t v) { return std::to_string(v); }

/// %.9g rendering shared with the JSON emitters — scale values round-trip.
std::string num_str(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string dataset_canonical(const StudySpec& spec, data::DatasetKind kind) {
  const data::SyntheticSpec ds = dataset_spec_for(spec, kind);
  return std::string("dataset=") + data::dataset_name(kind) +
         ",image=" + u64_str(ds.image_size) + ",scale=" + num_str(ds.scale) +
         ",gen_seed=" + u64_str(ds.seed);
}

std::string model_canonical(const StudySpec& spec, models::Arch arch) {
  return std::string("model=") + models::arch_name(arch) +
         ",width=" + u64_str(spec.model_width);
}

std::string train_canonical(const StudySpec& spec, data::DatasetKind kind) {
  const nn::TrainOptions t = train_options_for(spec, kind);
  return "epochs=" + u64_str(t.epochs) + ",batch=" + u64_str(t.batch_size) +
         ",lr=" + num_str(t.lr) + ",momentum=" + num_str(t.momentum) +
         ",wd=" + num_str(t.weight_decay) + ",lr_decay=" + num_str(t.lr_decay) +
         ",shuffle=" + (t.shuffle ? "1" : "0") +
         ",adam=" + (t.use_adam ? "1" : "0") +
         ",auto_tune=" + (t.auto_tune ? "1" : "0");
}

std::string hp_canonical(const StudySpec& spec) {
  const mitigation::Hyperparameters& hp = spec.hyperparams;
  std::string ens = "default";
  if (!hp.ens_members.empty()) {
    ens.clear();
    for (std::size_t i = 0; i < hp.ens_members.size(); ++i) {
      if (i) ens += "+";
      ens += models::arch_name(hp.ens_members[i]);
    }
  }
  return "ls_alpha=" + num_str(hp.ls_alpha) +
         ",ls_relax=" + (hp.ls_use_relaxation ? "1" : "0") +
         ",lc_gamma=" + num_str(hp.lc_gamma) +
         ",lc_hidden=" + u64_str(hp.lc_hidden) +
         ",lc_steps=" + u64_str(hp.lc_secondary_steps) +
         ",rl_alpha=" + num_str(hp.rl_alpha) + ",rl_beta=" + num_str(hp.rl_beta) +
         ",kd_alpha=" + num_str(hp.kd_alpha) +
         ",kd_temp=" + num_str(hp.kd_temperature) +
         ",kd_epochs=" + num_str(hp.kd_student_epoch_factor) + ",ens=" + ens;
}

std::string level_canonical(const StudySpec& spec, std::size_t level) {
  return "level=" + spec.fault_level_name(level);
}

std::string trial_canonical(std::size_t trial) {
  return "trial=" + u64_str(trial + 1);
}

std::string seed_canonical(const StudySpec& spec) {
  return "seed=" + u64_str(spec.seed);
}

}  // namespace

std::string cell_canonical(const StudySpec& spec, const Cell& cell) {
  const data::DatasetKind kind = spec.datasets[cell.dataset];
  // The quantized suffix appears only when the flag is on so cell ids of
  // existing (fp32-only) campaigns are unchanged.
  return "tdfm.cell.v1|" + dataset_canonical(spec, kind) + "|" +
         model_canonical(spec, spec.models[cell.model]) + "|" +
         level_canonical(spec, cell.level) + "|technique=" +
         mitigation::technique_name(spec.techniques[cell.technique]) + "|" +
         trial_canonical(cell.trial) + "|" + train_canonical(spec, kind) + "|" +
         hp_canonical(spec) + "|" + seed_canonical(spec) +
         (spec.measure_quantized ? "|quantized=1" : "");
}

std::string cell_id(const StudySpec& spec, const Cell& cell) {
  const std::uint64_t h = stable_hash64(cell_canonical(spec, cell));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::size_t shard_of(std::string_view cell_id, std::size_t shard_count) {
  if (shard_count == 0) throw ConfigError("shard_count must be >= 1");
  // Re-hash the (already hashed) id rather than reinterpreting its hex:
  // callers may pass foreign ids of any shape, and stable_hash64 keeps the
  // partition platform-independent either way.
  return stable_hash64(cell_id) % shard_count;
}

data::SyntheticSpec dataset_spec_for(const StudySpec& spec,
                                     data::DatasetKind kind) {
  data::SyntheticSpec ds;
  ds.kind = kind;
  ds.scale = spec.scale;
  if (spec.tune_small_datasets && kind == data::DatasetKind::kPneumoniaSim) {
    // Pneumonia-sim mirrors the real dataset's ~1/10 size; scaling it below
    // full size leaves too few samples per class to train on.  It is cheap —
    // keep it full (same rule as the bench harness).
    ds.scale = std::max(spec.scale, 1.0);
  }
  // Content-derived so every cell (and every campaign sharing these fields)
  // regenerates or cache-hits the exact same data.
  ds.seed = stable_hash64(std::string("tdfm.dataset.v1|kind=") +
                          data::dataset_name(kind) + ",scale=" + num_str(ds.scale) +
                          ",seed=" + std::to_string(spec.seed));
  return ds;
}

nn::TrainOptions train_options_for(const StudySpec& spec,
                                   data::DatasetKind kind) {
  nn::TrainOptions t = spec.train_opts;
  if (spec.tune_small_datasets && kind == data::DatasetKind::kPneumoniaSim) {
    // ~120 train images: smaller batches and proportionally more epochs so
    // every model sees a comparable number of optimisation steps.
    t.batch_size = 8;
    t.epochs = spec.train_opts.epochs * 5 / 2;
  }
  return t;
}

namespace {

std::uint64_t role_seed(const std::string& role, const std::string& canonical) {
  return stable_hash64(role + "|" + canonical);
}

std::string golden_canonical(const StudySpec& spec, const Cell& cell) {
  const data::DatasetKind kind = spec.datasets[cell.dataset];
  return dataset_canonical(spec, kind) + "|" +
         model_canonical(spec, spec.models[cell.model]) + "|" +
         trial_canonical(cell.trial) + "|" + train_canonical(spec, kind) + "|" +
         seed_canonical(spec);
}

std::string injection_canonical(const StudySpec& spec, const Cell& cell) {
  const data::DatasetKind kind = spec.datasets[cell.dataset];
  return dataset_canonical(spec, kind) + "|" + level_canonical(spec, cell.level) +
         "|" + trial_canonical(cell.trial) + "|" + seed_canonical(spec);
}

}  // namespace

std::uint64_t golden_seed(const StudySpec& spec, const Cell& cell) {
  return role_seed("golden", golden_canonical(spec, cell));
}

std::uint64_t golden_key(const StudySpec& spec, const Cell& cell) {
  return stable_hash64("golden-key|" + golden_canonical(spec, cell));
}

std::uint64_t inject_seed(const StudySpec& spec, const Cell& cell) {
  return role_seed("inject", injection_canonical(spec, cell));
}

std::uint64_t lc_split_seed(const StudySpec& spec, const Cell& cell) {
  return role_seed("lc-split", injection_canonical(spec, cell));
}

std::uint64_t lc_inject_seed(const StudySpec& spec, const Cell& cell) {
  return role_seed("lc-inject", injection_canonical(spec, cell));
}

namespace {

/// The fit identity: like the cell canonical, but ensembles replace the
/// model axis with a fixed token (their member set ignores the panel model),
/// making one trained ensemble shareable across every panel of the grid.
std::string fit_canonical(const StudySpec& spec, const Cell& cell) {
  const data::DatasetKind kind = spec.datasets[cell.dataset];
  const bool shareable =
      spec.techniques[cell.technique] == mitigation::TechniqueKind::kEnsemble;
  const std::string model_part =
      (shareable ? std::string("shared")
                 : std::string(models::arch_name(spec.models[cell.model]))) +
      ",width=" + std::to_string(spec.model_width);
  return dataset_canonical(spec, kind) + "|model=" + model_part + "|" +
         level_canonical(spec, cell.level) + "|technique=" +
         mitigation::technique_name(spec.techniques[cell.technique]) + "|" +
         trial_canonical(cell.trial) + "|" + train_canonical(spec, kind) + "|" +
         hp_canonical(spec) + "|" + seed_canonical(spec) +
         (spec.measure_quantized ? "|quantized=1" : "");
}

}  // namespace

std::uint64_t fit_seed(const StudySpec& spec, const Cell& cell) {
  return role_seed("fit", fit_canonical(spec, cell));
}

std::uint64_t shared_fit_key(const StudySpec& spec, const Cell& cell) {
  if (spec.techniques[cell.technique] != mitigation::TechniqueKind::kEnsemble) {
    return 0;
  }
  return stable_hash64("shared-fit-key|" + fit_canonical(spec, cell));
}

}  // namespace tdfm::study
