#include "study/journal.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "core/error.hpp"
#include "core/file_lock.hpp"
#include "core/logging.hpp"
#include "obs/json.hpp"

namespace tdfm::study {

bool equal_modulo_timing(const CellRecord& a, const CellRecord& b) {
  CellRecord ta = a;
  CellRecord tb = b;
  ta.train_seconds = tb.train_seconds = 0.0;
  ta.infer_seconds = tb.infer_seconds = 0.0;
  return ta == tb;
}

namespace {

/// Round-trip-exact JSON number: a resumed record must compare equal to the
/// in-memory original bit for bit, so the journal serialises doubles with
/// full precision (obs::json_number's %.9g is for human-facing telemetry).
std::string exact_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string to_jsonl(const CellRecord& r) {
  std::ostringstream os;
  os << "{\"cell\": " << obs::json_string(r.cell)
     << ", \"dataset\": " << obs::json_string(r.dataset)
     << ", \"model\": " << obs::json_string(r.model)
     << ", \"fault_level\": " << obs::json_string(r.fault_level)
     << ", \"technique\": " << obs::json_string(r.technique)
     << ", \"trial\": " << r.trial
     << ", \"golden_accuracy\": " << exact_number(r.golden_accuracy)
     << ", \"faulty_accuracy\": " << exact_number(r.faulty_accuracy)
     << ", \"ad\": " << exact_number(r.ad)
     << ", \"reverse_ad\": " << exact_number(r.reverse_ad)
     << ", \"naive_drop\": " << exact_number(r.naive_drop)
     << ", \"train_seconds\": " << exact_number(r.train_seconds)
     << ", \"infer_seconds\": " << exact_number(r.infer_seconds)
     << ", \"inference_models\": " << exact_number(r.inference_models)
     << ", \"shared_fit\": " << (r.shared_fit ? "true" : "false")
     << ", \"quantized\": " << (r.quantized ? "true" : "false")
     << ", \"quantized_accuracy\": " << exact_number(r.quantized_accuracy)
     << ", \"quantized_ad\": " << exact_number(r.quantized_ad)
     << ", \"quantized_vs_fp32_ad\": " << exact_number(r.quantized_vs_fp32_ad)
     << "}";
  return os.str();
}

namespace {

/// Minimal parser for the flat JSON objects the journal emits: string,
/// number, and boolean values only.  Tolerates unknown keys; rejects
/// anything structurally off so a truncated or foreign file fails loudly.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(std::string_view s) : s_(s) {}

  /// Invokes on_field(key, string_value, number_value, is_string, is_bool)
  /// for every key/value pair.
  template <typename Fn>
  void parse(Fn&& on_field) {
    skip_ws();
    expect('{');
    skip_ws();
    if (consume('}')) return;
    while (true) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (!eof() && peek() == '"') {
        on_field(key, parse_string(), 0.0, true, false);
      } else if (!eof() && (peek() == 't' || peek() == 'f')) {
        const bool v = consume_literal("true");
        if (!v) {
          if (!consume_literal("false")) fail("expected boolean");
        }
        on_field(key, std::string(), v ? 1.0 : 0.0, false, true);
      } else if (consume_literal("null")) {
        on_field(key, std::string(), 0.0, false, false);
      } else {
        on_field(key, std::string(), parse_number(), false, false);
      }
      skip_ws();
      if (consume('}')) break;
      expect(',');
    }
    skip_ws();
    if (!eof()) fail("trailing characters after record");
  }

 private:
  [[nodiscard]] bool eof() const { return pos_ >= s_.size(); }
  [[nodiscard]] char peek() const { return s_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\r' ||
                      peek() == '\n')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  bool consume_literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  /// One \uXXXX escape's code unit (the four hex digits after "\u").
  unsigned parse_hex4() {
    if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = s_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else fail("bad \\u escape");
    }
    return code;
  }

  /// Appends `code` (a Unicode scalar value) as UTF-8.
  void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) fail("unterminated escape");
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: JSON encodes astral code points as a
            // \uD800-\uDBFF + \uDC00-\uDFFF pair (RFC 8259 §7).
            if (!consume_literal("\\u")) fail("unpaired high surrogate");
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("bad low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired low surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  double parse_number() {
    // Exactly the RFC 8259 grammar:
    //   -? (0 | [1-9][0-9]*) ('.' [0-9]+)? ([eE] [+-]? [0-9]+)?
    // A leading '+', a lone '-', "01", "1." or interior signs ("1-2") are
    // rejected here rather than left to stod's laxer locale-aware parse, so
    // foreign files fail loudly, as this parser's contract promises.
    const std::size_t start = pos_;
    const auto digit = [&] { return !eof() && peek() >= '0' && peek() <= '9'; };
    consume('-');
    if (consume('0')) {
      // "0" takes no more integer digits ("01" is not a JSON number).
    } else {
      if (!digit()) fail("expected number");
      while (digit()) ++pos_;
    }
    if (consume('.')) {
      if (!digit()) fail("expected digit after decimal point");
      while (digit()) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digit()) fail("expected exponent digits");
      while (digit()) ++pos_;
    }
    const std::string text(s_.substr(start, pos_ - start));
    try {
      std::size_t used = 0;
      const double v = std::stod(text, &used);
      if (used != text.size()) throw std::invalid_argument(text);
      return v;
    } catch (const std::exception&) {
      fail("malformed number '" + text + "'");
    }
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw ConfigError("journal parse error at byte " + std::to_string(pos_) +
                      ": " + why);
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

CellRecord parse_record(std::string_view line) {
  CellRecord r;
  bool saw_cell = false;
  FlatJsonParser parser(line);
  parser.parse([&](const std::string& key, const std::string& s, double num,
                   bool is_string, bool is_bool) {
    if (key == "cell" && is_string) {
      r.cell = s;
      saw_cell = true;
    } else if (key == "dataset" && is_string) r.dataset = s;
    else if (key == "model" && is_string) r.model = s;
    else if (key == "fault_level" && is_string) r.fault_level = s;
    else if (key == "technique" && is_string) r.technique = s;
    else if (key == "trial") r.trial = static_cast<std::size_t>(num);
    else if (key == "golden_accuracy") r.golden_accuracy = num;
    else if (key == "faulty_accuracy") r.faulty_accuracy = num;
    else if (key == "ad") r.ad = num;
    else if (key == "reverse_ad") r.reverse_ad = num;
    else if (key == "naive_drop") r.naive_drop = num;
    else if (key == "train_seconds") r.train_seconds = num;
    else if (key == "infer_seconds") r.infer_seconds = num;
    else if (key == "inference_models") r.inference_models = num;
    else if (key == "shared_fit" && is_bool) r.shared_fit = num != 0.0;
    else if (key == "quantized" && is_bool) r.quantized = num != 0.0;
    else if (key == "quantized_accuracy") r.quantized_accuracy = num;
    else if (key == "quantized_ad") r.quantized_ad = num;
    else if (key == "quantized_vs_fp32_ad") r.quantized_vs_fp32_ad = num;
    // Unknown keys: ignored (forward compatibility).
  });
  if (!saw_cell || r.cell.empty()) {
    throw ConfigError("journal record is missing its cell id");
  }
  return r;
}

std::vector<CellRecord> Journal::load(const std::string& path,
                                      bool* recovered_torn_tail) {
  if (recovered_torn_tail) *recovered_torn_tail = false;
  std::vector<CellRecord> records;

  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return records;  // missing file: a fresh campaign
    throw ConfigError("cannot stat journal " + path + ": " +
                      std::strerror(errno));
  }
  // The file exists: from here on every failure is an error.  Treating an
  // unreadable journal as a fresh campaign would silently recompute (and
  // then clobber) finished work.
  if (!S_ISREG(st.st_mode)) {
    throw ConfigError("journal " + path + " is not a regular file");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw ConfigError("journal " + path + " exists but cannot be read");
  }

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // getline strips '\n'; a final line that hits EOF first is unterminated
    // — the only place a kill -9 mid-append can tear.
    const bool terminated = !in.eof();
    if (line.empty()) continue;
    try {
      records.push_back(parse_record(line));
    } catch (const ConfigError& e) {
      if (!terminated) {
        TDFM_LOG(kWarn) << "journal " << path << ": dropping torn final line "
                        << line_no << " (" << line.size()
                        << " bytes) — interrupted append";
        if (recovered_torn_tail) *recovered_torn_tail = true;
        break;
      }
      throw ConfigError("journal " + path + " line " + std::to_string(line_no) +
                        ": " + e.what());
    }
  }
  return records;
}

void Journal::adopt(std::vector<CellRecord> records) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& r : records) records_.push_back(std::move(r));
}

void Journal::append(CellRecord record) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!path_.empty()) {
    if (!file_) file_ = std::make_unique<core::AppendFile>(path_);
    file_->append(to_jsonl(record) + '\n');
  }
  records_.push_back(std::move(record));
}

std::vector<CellRecord> Journal::records() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

MergeResult merge_journals(const std::vector<std::string>& paths) {
  MergeResult out;
  // cell id -> index into out.records; first occurrence wins until a
  // lexicographically smaller serialisation replaces it.
  std::unordered_map<std::string, std::size_t> by_cell;
  for (const std::string& path : paths) {
    for (CellRecord& r : Journal::load(path)) {
      ++out.inputs;
      const auto it = by_cell.find(r.cell);
      if (it == by_cell.end()) {
        by_cell.emplace(r.cell, out.records.size());
        out.records.push_back(std::move(r));
        continue;
      }
      CellRecord& kept = out.records[it->second];
      if (!equal_modulo_timing(kept, r)) {
        throw ConfigError("journal merge conflict: cell " + r.cell + " in " +
                          path + " disagrees with an earlier journal beyond "
                          "timing fields — the shards did not run the same "
                          "grid");
      }
      ++out.duplicates;
      // Deterministic representative: the smallest serialisation, so the
      // merged bytes do not depend on which shard also computed this cell.
      if (to_jsonl(r) < to_jsonl(kept)) kept = std::move(r);
    }
  }
  std::sort(out.records.begin(), out.records.end(),
            [](const CellRecord& a, const CellRecord& b) {
              return a.cell < b.cell;
            });
  return out;
}

void write_journal(const std::string& path,
                   const std::vector<CellRecord>& records) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    TDFM_CHECK(out.good(), "cannot open journal tmp file: " + tmp);
    for (const CellRecord& r : records) out << to_jsonl(r) << '\n';
    out.flush();
    TDFM_CHECK(out.good(), "failed writing journal tmp file: " + tmp);
  }
  // Atomic within a directory on POSIX: readers see the old or the new
  // journal, never a torn one.
  TDFM_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
             "failed renaming journal into place: " + path);
}

}  // namespace tdfm::study
