#include "study/journal.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>

#include "core/error.hpp"
#include "core/file_lock.hpp"
#include "core/logging.hpp"
#include "obs/flat_json.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"

namespace tdfm::study {

bool equal_modulo_timing(const CellRecord& a, const CellRecord& b) {
  CellRecord ta = a;
  CellRecord tb = b;
  ta.train_seconds = tb.train_seconds = 0.0;
  ta.infer_seconds = tb.infer_seconds = 0.0;
  return ta == tb;
}

namespace {

/// Round-trip-exact JSON number: a resumed record must compare equal to the
/// in-memory original bit for bit, so the journal serialises doubles with
/// full precision (obs::json_number's %.9g is for human-facing telemetry).
std::string exact_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string to_jsonl(const CellRecord& r) {
  std::ostringstream os;
  os << "{\"cell\": " << obs::json_string(r.cell)
     << ", \"dataset\": " << obs::json_string(r.dataset)
     << ", \"model\": " << obs::json_string(r.model)
     << ", \"fault_level\": " << obs::json_string(r.fault_level)
     << ", \"technique\": " << obs::json_string(r.technique)
     << ", \"trial\": " << r.trial
     << ", \"golden_accuracy\": " << exact_number(r.golden_accuracy)
     << ", \"faulty_accuracy\": " << exact_number(r.faulty_accuracy)
     << ", \"ad\": " << exact_number(r.ad)
     << ", \"reverse_ad\": " << exact_number(r.reverse_ad)
     << ", \"naive_drop\": " << exact_number(r.naive_drop)
     << ", \"train_seconds\": " << exact_number(r.train_seconds)
     << ", \"infer_seconds\": " << exact_number(r.infer_seconds)
     << ", \"inference_models\": " << exact_number(r.inference_models)
     << ", \"shared_fit\": " << (r.shared_fit ? "true" : "false")
     << ", \"quantized\": " << (r.quantized ? "true" : "false")
     << ", \"quantized_accuracy\": " << exact_number(r.quantized_accuracy)
     << ", \"quantized_ad\": " << exact_number(r.quantized_ad)
     << ", \"quantized_vs_fp32_ad\": " << exact_number(r.quantized_vs_fp32_ad)
     << "}";
  return os.str();
}

CellRecord parse_record(std::string_view line) {
  CellRecord r;
  bool saw_cell = false;
  // The journal's records are flat JSON objects, parsed by the strict
  // shared parser (obs/flat_json.hpp) under this file's error context.
  obs::FlatJsonParser parser(line, "journal parse error");
  parser.parse([&](const std::string& key, const obs::FlatValue& v) {
    const std::string& s = v.str;
    const double num = v.num;
    const bool is_string = v.is_string();
    const bool is_bool = v.is_bool();
    if (key == "cell" && is_string) {
      r.cell = s;
      saw_cell = true;
    } else if (key == "dataset" && is_string) r.dataset = s;
    else if (key == "model" && is_string) r.model = s;
    else if (key == "fault_level" && is_string) r.fault_level = s;
    else if (key == "technique" && is_string) r.technique = s;
    else if (key == "trial") r.trial = static_cast<std::size_t>(num);
    else if (key == "golden_accuracy") r.golden_accuracy = num;
    else if (key == "faulty_accuracy") r.faulty_accuracy = num;
    else if (key == "ad") r.ad = num;
    else if (key == "reverse_ad") r.reverse_ad = num;
    else if (key == "naive_drop") r.naive_drop = num;
    else if (key == "train_seconds") r.train_seconds = num;
    else if (key == "infer_seconds") r.infer_seconds = num;
    else if (key == "inference_models") r.inference_models = num;
    else if (key == "shared_fit" && is_bool) r.shared_fit = num != 0.0;
    else if (key == "quantized" && is_bool) r.quantized = num != 0.0;
    else if (key == "quantized_accuracy") r.quantized_accuracy = num;
    else if (key == "quantized_ad") r.quantized_ad = num;
    else if (key == "quantized_vs_fp32_ad") r.quantized_vs_fp32_ad = num;
    // Unknown keys: ignored (forward compatibility).
  });
  if (!saw_cell || r.cell.empty()) {
    throw ConfigError("journal record is missing its cell id");
  }
  return r;
}

std::vector<CellRecord> Journal::load(const std::string& path,
                                      bool* recovered_torn_tail) {
  if (recovered_torn_tail) *recovered_torn_tail = false;
  std::vector<CellRecord> records;

  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return records;  // missing file: a fresh campaign
    throw ConfigError("cannot stat journal " + path + ": " +
                      std::strerror(errno));
  }
  // The file exists: from here on every failure is an error.  Treating an
  // unreadable journal as a fresh campaign would silently recompute (and
  // then clobber) finished work.
  if (!S_ISREG(st.st_mode)) {
    throw ConfigError("journal " + path + " is not a regular file");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw ConfigError("journal " + path + " exists but cannot be read");
  }

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // getline strips '\n'; a final line that hits EOF first is unterminated
    // — the only place a kill -9 mid-append can tear.
    const bool terminated = !in.eof();
    if (line.empty()) continue;
    try {
      records.push_back(parse_record(line));
    } catch (const ConfigError& e) {
      if (!terminated) {
        TDFM_LOG(kWarn) << "journal " << path << ": dropping torn final line "
                        << line_no << " (" << line.size()
                        << " bytes) — interrupted append";
        if (recovered_torn_tail) *recovered_torn_tail = true;
        break;
      }
      throw ConfigError("journal " + path + " line " + std::to_string(line_no) +
                        ": " + e.what());
    }
  }
  return records;
}

void Journal::adopt(std::vector<CellRecord> records) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& r : records) records_.push_back(std::move(r));
}

void Journal::append(CellRecord record) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!path_.empty()) {
    if (!file_) file_ = std::make_unique<core::AppendFile>(path_);
    file_->append(to_jsonl(record) + '\n');
    if (obs::flight::enabled()) {
      obs::flight::record(obs::flight::EventKind::kJournalAppend, record.cell);
    }
  }
  records_.push_back(std::move(record));
}

std::vector<CellRecord> Journal::records() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::vector<std::string> discover_shard_journals(const std::string& base) {
  namespace fs = std::filesystem;
  const fs::path base_path(base);
  const std::string dir =
      base_path.has_parent_path() ? base_path.parent_path().string() : ".";
  const std::string prefix = base_path.filename().string() + ".shard";
  const std::string suffix = ".jsonl";

  // shard index -> (N, path)
  std::map<std::size_t, std::pair<std::size_t, std::string>> found;
  std::size_t shard_count = 0;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (ec) break;
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    if (name.size() < prefix.size() + suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    // Middle is "<i>of<N>": digits, "of", digits — anything else (say a
    // .shard0of3.jsonl.tmp leftover was already excluded by the suffix, but
    // a foreign name could still slip through) is not a sibling.
    const std::string mid = name.substr(
        prefix.size(), name.size() - prefix.size() - suffix.size());
    const std::size_t of = mid.find("of");
    if (of == std::string::npos || of == 0 || of + 2 >= mid.size()) continue;
    const std::string idx_s = mid.substr(0, of);
    const std::string n_s = mid.substr(of + 2);
    const auto all_digits = [](const std::string& s) {
      return !s.empty() &&
             std::all_of(s.begin(), s.end(),
                         [](unsigned char c) { return std::isdigit(c); });
    };
    if (!all_digits(idx_s) || !all_digits(n_s)) continue;
    const std::size_t idx = std::stoul(idx_s);
    const std::size_t n = std::stoul(n_s);
    if (n == 0 || idx >= n) {
      throw ConfigError("shard journal " + name + ": index " + idx_s +
                        " does not satisfy 0 <= i < " + n_s);
    }
    if (shard_count != 0 && n != shard_count) {
      throw ConfigError("shard journals next to " + base + " disagree on the "
                        "shard count (" + std::to_string(shard_count) +
                        " vs " + n_s + " in " + name + ") — two campaigns "
                        "share this journal name");
    }
    shard_count = n;
    const auto [it, inserted] =
        found.emplace(idx, std::make_pair(n, entry.path().string()));
    if (!inserted) {
      throw ConfigError("duplicate shard journal for index " + idx_s +
                        " next to " + base);
    }
  }
  if (found.empty()) return {};
  if (found.size() != shard_count) {
    std::string missing;
    for (std::size_t i = 0; i < shard_count; ++i) {
      if (found.count(i)) continue;
      missing += (missing.empty() ? "" : ", ") + std::to_string(i);
    }
    throw ConfigError("incomplete shard journal set next to " + base + ": " +
                      std::to_string(found.size()) + " of " +
                      std::to_string(shard_count) + " shards present "
                      "(missing index " + missing + ") — merging would drop "
                      "their cells");
  }
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (const auto& [idx, entry] : found) paths.push_back(entry.second);
  return paths;
}

MergeResult merge_journals(const std::vector<std::string>& paths) {
  MergeResult out;
  // cell id -> index into out.records; first occurrence wins until a
  // lexicographically smaller serialisation replaces it.
  std::unordered_map<std::string, std::size_t> by_cell;
  for (const std::string& path : paths) {
    for (CellRecord& r : Journal::load(path)) {
      ++out.inputs;
      const auto it = by_cell.find(r.cell);
      if (it == by_cell.end()) {
        by_cell.emplace(r.cell, out.records.size());
        out.records.push_back(std::move(r));
        continue;
      }
      CellRecord& kept = out.records[it->second];
      if (!equal_modulo_timing(kept, r)) {
        throw ConfigError("journal merge conflict: cell " + r.cell + " in " +
                          path + " disagrees with an earlier journal beyond "
                          "timing fields — the shards did not run the same "
                          "grid");
      }
      ++out.duplicates;
      // Deterministic representative: the smallest serialisation, so the
      // merged bytes do not depend on which shard also computed this cell.
      if (to_jsonl(r) < to_jsonl(kept)) kept = std::move(r);
    }
  }
  std::sort(out.records.begin(), out.records.end(),
            [](const CellRecord& a, const CellRecord& b) {
              return a.cell < b.cell;
            });
  return out;
}

void write_journal(const std::string& path,
                   const std::vector<CellRecord>& records) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    TDFM_CHECK(out.good(), "cannot open journal tmp file: " + tmp);
    for (const CellRecord& r : records) out << to_jsonl(r) << '\n';
    out.flush();
    TDFM_CHECK(out.good(), "failed writing journal tmp file: " + tmp);
  }
  // Atomic within a directory on POSIX: readers see the old or the new
  // journal, never a torn one.
  TDFM_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
             "failed renaming journal into place: " + path);
}

}  // namespace tdfm::study
